package paperdata

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

func TestTablesComplete(t *testing.T) {
	wantGroups := map[int]int{1: 2, 2: 4, 3: 4, 4: 5, 5: 7, 6: 8}
	for num, want := range wantGroups {
		td, ok := Tables[num]
		if !ok {
			t.Fatalf("table %d missing", num)
		}
		if len(td.Values) != want {
			t.Errorf("table %d has %d groups, want %d", num, len(td.Values), want)
		}
		for group, methods := range td.Values {
			for m, vals := range methods {
				if len(vals) != len(td.Parts) {
					t.Errorf("table %d %s %s: %d values for %d parts", num, group, m, len(vals), len(td.Parts))
				}
			}
			if _, ok := methods["DKNUX"]; !ok {
				t.Errorf("table %d %s missing DKNUX", num, group)
			}
			if _, ok := methods["RSB"]; !ok {
				t.Errorf("table %d %s missing RSB", num, group)
			}
		}
	}
}

func TestSpotCheckTranscription(t *testing.T) {
	// Distinctive values straight from the paper text.
	cases := []struct {
		table  int
		group  string
		method string
		idx    int
		want   float64
	}{
		{1, "167 Nodes", "DKNUX", 0, 20},
		{1, "144 Nodes", "RSB", 1, 78},
		{2, "279 Nodes", "RSB", 2, 155},
		{3, "183 plus 60 Nodes", "DKNUX", 2, 160},
		{4, "144 Nodes", "RSB", 0, 44},
		{5, "309 Nodes", "RSB", 1, 52},
		{6, "249 plus 60 Nodes", "DKNUX", 1, 56},
		{6, "78 plus 20 Nodes", "RSB", 0, -1}, // blank in the paper
	}
	for _, c := range cases {
		got := Tables[c.table].Values[c.group][c.method][c.idx]
		if got != c.want {
			t.Errorf("table %d %s %s[%d] = %v, want %v", c.table, c.group, c.method, c.idx, got, c.want)
		}
	}
}

func TestWinner(t *testing.T) {
	if w := Winner(1, "167 Nodes", 0); w != "tie" { // 20 vs 20
		t.Errorf("winner = %q, want tie", w)
	}
	if w := Winner(1, "167 Nodes", 1); w != "RSB" { // 63 vs 59
		t.Errorf("winner = %q, want RSB", w)
	}
	if w := Winner(5, "88 Nodes", 0); w != "DKNUX" { // 24 vs 33
		t.Errorf("winner = %q, want DKNUX", w)
	}
	if w := Winner(6, "78 plus 20 Nodes", 0); w != "n/a" {
		t.Errorf("winner = %q, want n/a", w)
	}
	if w := Winner(9, "x", 0); w != "n/a" {
		t.Errorf("missing table winner = %q", w)
	}
}

func TestDKNUXWinsPaperClaims(t *testing.T) {
	// The paper claims DKNUX is better or comparable in most cases; its own
	// numbers should show DKNUX winning the majority of decided cells in
	// Tables 2, 3, 5, 6.
	for _, table := range []int{2, 3, 5, 6} {
		wins, losses, _ := DKNUXWins(table)
		if wins <= losses {
			t.Errorf("table %d: paper data shows DKNUX %d wins vs %d losses — transcription suspect",
				table, wins, losses)
		}
	}
}

func TestCompareAgainstSelf(t *testing.T) {
	// Feed the paper's own numbers back as "measured": agreement must be 100%.
	td := Tables[5]
	var mt bench.Table
	mt.ID = "Table 5"
	mt.Parts = td.Parts
	for group, methods := range td.Values {
		mt.Groups = append(mt.Groups, bench.Group{
			Label: group,
			Rows: []bench.Row{
				{Label: "Worst Cut Using DKNUX", Values: methods["DKNUX"]},
				{Label: "Worst Cut Using RSB", Values: methods["RSB"]},
			},
		})
	}
	cmp := Compare(5, mt)
	if cmp.ShapeAgreement != 1 {
		t.Errorf("self-comparison agreement = %v, want 1", cmp.ShapeAgreement)
	}
	if len(cmp.Rows) != 14 {
		t.Errorf("rows = %d, want 14", len(cmp.Rows))
	}
	out := cmp.Format()
	if !strings.Contains(out, "shape agreement: 100%") {
		t.Errorf("Format output wrong:\n%s", out)
	}
}

func TestCompareDisagreement(t *testing.T) {
	// Flip one cell so DKNUX loses where the paper has it winning.
	mt := bench.Table{
		ID:    "Table 5",
		Parts: []int{4, 8},
		Groups: []bench.Group{{
			Label: "88 Nodes",
			Rows: []bench.Row{
				{Label: "Worst Cut Using DKNUX", Values: []float64{50, 22}},
				{Label: "Worst Cut Using RSB", Values: []float64{33, 27}},
			},
		}},
	}
	cmp := Compare(5, mt)
	if len(cmp.Rows) != 2 {
		t.Fatalf("rows = %d", len(cmp.Rows))
	}
	if cmp.ShapeAgreement != 0.5 {
		t.Errorf("agreement = %v, want 0.5", cmp.ShapeAgreement)
	}
	if !strings.Contains(cmp.Format(), "NO") {
		t.Error("Format does not flag the disagreement")
	}
}

func TestCompareUnknownTable(t *testing.T) {
	cmp := Compare(42, bench.Table{ID: "Table 42"})
	if len(cmp.Rows) != 0 || cmp.ShapeAgreement != 0 {
		t.Error("unknown table should yield empty comparison")
	}
}
