// Package paperdata records the numbers published in the paper's Tables 1–6
// verbatim, so the experiment harness can print measured-vs-paper
// comparisons mechanically (cmd/experiments -compare).
//
// Values are transcribed from the SC'94 paper (revised September 1996
// SURFACE copy). A value of -1 marks a cell the paper leaves blank (its
// Table 6 has no RSB row for the "78 plus 20 nodes" case).
package paperdata

// Cell addresses one number in a paper table: a graph label, a method row,
// and a part count.
type Cell struct {
	Group  string // e.g. "167 Nodes", "118 plus 21 Nodes"
	Method string // "DKNUX" or "RSB"
	Parts  int
}

// TableData holds one paper table: metric description and the values.
type TableData struct {
	ID     string
	Metric string
	Parts  []int
	// Values[group][method] is indexed parallel to Parts.
	Values map[string]map[string][]float64
}

// Tables maps table number (1–6) to its published data.
var Tables = map[int]TableData{
	1: {
		ID: "Table 1", Metric: "total inter-part edges", Parts: []int{2, 4, 8},
		Values: map[string]map[string][]float64{
			"167 Nodes": {"DKNUX": {20, 63, 109}, "RSB": {20, 59, 120}},
			"144 Nodes": {"DKNUX": {33, 65, 120}, "RSB": {36, 78, 119}},
		},
	},
	2: {
		ID: "Table 2", Metric: "total inter-part edges", Parts: []int{2, 4, 8},
		Values: map[string]map[string][]float64{
			"139 Nodes": {"DKNUX": {28, 65, 100}, "RSB": {30, 69, 113}},
			"213 Nodes": {"DKNUX": {41, 77, 138}, "RSB": {41, 82, 151}},
			"243 Nodes": {"DKNUX": {43, 88, 141}, "RSB": {47, 95, 154}},
			"279 Nodes": {"DKNUX": {36, 78, 139}, "RSB": {37, 88, 155}},
		},
	},
	3: {
		ID: "Table 3", Metric: "total inter-part edges", Parts: []int{2, 4, 8},
		Values: map[string]map[string][]float64{
			"118 plus 21 Nodes": {"DKNUX": {31, 61, 103}, "RSB": {30, 69, 113}},
			"118 plus 41 Nodes": {"DKNUX": {31, 66, 120}, "RSB": {33, 75, 128}},
			"183 plus 30 Nodes": {"DKNUX": {37, 72, 133}, "RSB": {41, 82, 151}},
			"183 plus 60 Nodes": {"DKNUX": {44, 83, 160}, "RSB": {47, 95, 154}},
		},
	},
	4: {
		ID: "Table 4", Metric: "worst cut max_q C(q)", Parts: []int{4, 8},
		Values: map[string]map[string][]float64{
			"78 Nodes":  {"DKNUX": {23, 23}, "RSB": {26, 25}},
			"88 Nodes":  {"DKNUX": {28, 21}, "RSB": {33, 27}},
			"98 Nodes":  {"DKNUX": {26, 23}, "RSB": {30, 30}},
			"144 Nodes": {"DKNUX": {53, 42}, "RSB": {44, 35}},
			"167 Nodes": {"DKNUX": {44, 39}, "RSB": {40, 41}},
		},
	},
	5: {
		ID: "Table 5", Metric: "worst cut max_q C(q)", Parts: []int{4, 8},
		Values: map[string]map[string][]float64{
			"78 Nodes":  {"DKNUX": {23, 20}, "RSB": {26, 25}},
			"88 Nodes":  {"DKNUX": {24, 22}, "RSB": {33, 27}},
			"98 Nodes":  {"DKNUX": {24, 22}, "RSB": {30, 30}},
			"213 Nodes": {"DKNUX": {40, 41}, "RSB": {46, 45}},
			"243 Nodes": {"DKNUX": {45, 41}, "RSB": {51, 47}},
			"279 Nodes": {"DKNUX": {42, 42}, "RSB": {46, 47}},
			"309 Nodes": {"DKNUX": {44, 47}, "RSB": {46, 52}},
		},
	},
	6: {
		ID: "Table 6", Metric: "worst cut max_q C(q)", Parts: []int{4, 8},
		Values: map[string]map[string][]float64{
			"78 plus 10 Nodes":  {"DKNUX": {27, 25}, "RSB": {33, 27}},
			"78 plus 20 Nodes":  {"DKNUX": {29, 27}, "RSB": {-1, -1}},
			"118 plus 21 Nodes": {"DKNUX": {33, 29}, "RSB": {38, 34}},
			"118 plus 41 Nodes": {"DKNUX": {34, 35}, "RSB": {40, 39}},
			"183 plus 30 Nodes": {"DKNUX": {41, 40}, "RSB": {46, 45}},
			"183 plus 60 Nodes": {"DKNUX": {46, 45}, "RSB": {51, 47}},
			"249 plus 30 Nodes": {"DKNUX": {42, 44}, "RSB": {51, 47}},
			"249 plus 60 Nodes": {"DKNUX": {46, 56}, "RSB": {46, 52}},
		},
	},
}

// Winner reports which method the paper's table favors for a cell: "DKNUX",
// "RSB", "tie", or "n/a" when the paper has no value.
func Winner(table int, group string, partIdx int) string {
	t, ok := Tables[table]
	if !ok {
		return "n/a"
	}
	g, ok := t.Values[group]
	if !ok {
		return "n/a"
	}
	d, r := g["DKNUX"][partIdx], g["RSB"][partIdx]
	switch {
	case d < 0 || r < 0:
		return "n/a"
	case d < r:
		return "DKNUX"
	case r < d:
		return "RSB"
	default:
		return "tie"
	}
}

// DKNUXWins counts, over a whole paper table, the cells where DKNUX is
// strictly better, strictly worse, and tied/absent against RSB.
func DKNUXWins(table int) (wins, losses, other int) {
	t, ok := Tables[table]
	if !ok {
		return 0, 0, 0
	}
	for group := range t.Values {
		for i := range t.Parts {
			switch Winner(table, group, i) {
			case "DKNUX":
				wins++
			case "RSB":
				losses++
			default:
				other++
			}
		}
	}
	return wins, losses, other
}
