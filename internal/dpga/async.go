package dpga

import (
	"fmt"
	"sync"

	"repro/internal/ga"
	"repro/internal/graph"
	"repro/internal/partition"
)

// AsyncModel is the barrier-free variant of the island model: each island
// runs in its own goroutine at its own pace, posting copies of its best
// individual to its neighbors' buffered inboxes every MigrationInterval
// generations and absorbing whatever migrants have arrived before each
// generation. This matches how a message-passing implementation on the
// paper's target machines (CM-5, Paragon) would behave: no global
// synchronization, migrants arrive whenever the network delivers them.
//
// Unlike Model, AsyncModel is NOT deterministic: arrival order depends on
// scheduling. Use Model for reproducible experiments and AsyncModel to
// measure the island model without barrier overhead.
type AsyncModel struct {
	g       *graph.Graph
	cfg     Config
	islands []*ga.Engine
	inboxes []chan *partition.Partition
}

// NewAsync validates cfg and builds the islands (same configuration rules
// as New). Async islands always run concurrently, so an unset
// Base.EvalWorkers defaults to one evaluation worker per island, exactly as
// in the Parallel synchronous model.
func NewAsync(g *graph.Graph, cfg Config) (*AsyncModel, error) {
	if cfg.Base.EvalWorkers == 0 {
		cfg.Base.EvalWorkers = 1
	}
	m, err := New(g, cfg)
	if err != nil {
		return nil, err
	}
	am := &AsyncModel{g: g, cfg: m.cfg, islands: m.islands}
	am.inboxes = make([]chan *partition.Partition, len(am.islands))
	for i := range am.inboxes {
		// Enough buffer that a slow island never blocks its neighbors.
		am.inboxes[i] = make(chan *partition.Partition, 64)
	}
	return am, nil
}

// Run advances every island by generations steps concurrently and returns
// the best individual found. It may be called repeatedly; inboxes persist
// across calls.
func (m *AsyncModel) Run(generations int) *ga.Individual {
	n := len(m.islands)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := m.islands[i]
			nbrs := m.cfg.Topology.Neighbors(i, n)
			for gen := 1; gen <= generations; gen++ {
				// Absorb pending migrants without blocking.
				for {
					select {
					case mig := <-m.inboxes[i]:
						e.Inject(mig)
						continue
					default:
					}
					break
				}
				e.Step()
				if gen%m.cfg.MigrationInterval == 0 {
					best := e.Best().Part
					for _, to := range nbrs {
						select {
						case m.inboxes[to] <- best.Clone():
						default: // receiver's inbox full: drop the migrant
						}
					}
				}
			}
		}(i)
	}
	wg.Wait()
	return m.Best()
}

// Best returns a clone of the best individual across all islands.
func (m *AsyncModel) Best() *ga.Individual {
	best := m.islands[0].Best()
	for _, e := range m.islands[1:] {
		if b := e.Best(); b.Fitness > best.Fitness {
			best = b
		}
	}
	return best
}

// Islands exposes the underlying engines (read-only use after Run returns).
func (m *AsyncModel) Islands() []*ga.Engine { return m.islands }

// DrainInbox counts and discards pending migrants of island i; exposed for
// tests.
func (m *AsyncModel) DrainInbox(i int) int {
	if i < 0 || i >= len(m.inboxes) {
		panic(fmt.Sprintf("dpga: no island %d", i))
	}
	count := 0
	for {
		select {
		case <-m.inboxes[i]:
			count++
		default:
			return count
		}
	}
}
