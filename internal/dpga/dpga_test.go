package dpga

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/ga"
	"repro/internal/gen"
	"repro/internal/partition"
)

func TestHypercubeNeighbors(t *testing.T) {
	// 4-d hypercube: every island has 4 neighbors, adjacency symmetric.
	n := 16
	for i := 0; i < n; i++ {
		nbrs := Hypercube{}.Neighbors(i, n)
		if len(nbrs) != 4 {
			t.Fatalf("island %d has %d neighbors, want 4", i, len(nbrs))
		}
		for _, j := range nbrs {
			back := Hypercube{}.Neighbors(j, n)
			found := false
			for _, k := range back {
				if k == i {
					found = true
				}
			}
			if !found {
				t.Fatalf("hypercube asymmetric: %d -> %d", i, j)
			}
		}
	}
}

func TestHypercubeValidate(t *testing.T) {
	if err := (Hypercube{}).Validate(16); err != nil {
		t.Error(err)
	}
	for _, n := range []int{0, 3, 6, 12} {
		if err := (Hypercube{}).Validate(n); err == nil {
			t.Errorf("hypercube accepted %d islands", n)
		}
	}
}

func TestRingNeighbors(t *testing.T) {
	nbrs := Ring{}.Neighbors(0, 5)
	sort.Ints(nbrs)
	if len(nbrs) != 2 || nbrs[0] != 1 || nbrs[1] != 4 {
		t.Errorf("ring neighbors of 0 = %v", nbrs)
	}
	// Two islands: single neighbor, no duplicates.
	if n := (Ring{}).Neighbors(0, 2); len(n) != 1 || n[0] != 1 {
		t.Errorf("2-ring neighbors = %v", n)
	}
	if err := (Ring{}).Validate(1); err == nil {
		t.Error("ring accepted 1 island")
	}
}

func TestMeshNeighbors(t *testing.T) {
	m := Mesh{Rows: 2, Cols: 3}
	if err := m.Validate(6); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(5); err == nil {
		t.Error("mesh accepted wrong count")
	}
	// Corner 0 has 2 neighbors; center of a 3x3 has 4.
	if n := m.Neighbors(0, 6); len(n) != 2 {
		t.Errorf("corner neighbors = %v", n)
	}
	m2 := Mesh{Rows: 3, Cols: 3}
	if n := m2.Neighbors(4, 9); len(n) != 4 {
		t.Errorf("center neighbors = %v", n)
	}
}

func TestTopologyNames(t *testing.T) {
	if (Hypercube{}).Name() == "" || (Ring{}).Name() == "" || (Mesh{2, 2}).Name() == "" {
		t.Error("empty topology name")
	}
}

func baseConfig(parts int) ga.Config {
	return ga.Config{
		Parts:   parts,
		PopSize: 64, // total across islands
		Seed:    21,
	}
}

func TestNewValidation(t *testing.T) {
	g := gen.Mesh(40, 1)
	// No crossover anywhere.
	if _, err := New(g, Config{Base: baseConfig(2), Islands: 4}); err == nil {
		t.Error("config without crossover accepted")
	}
	// Too many islands for the population.
	cfg := Config{Base: baseConfig(2), Islands: 64}
	cfg.Base.Crossover = ga.Uniform{}
	if _, err := New(g, cfg); err == nil {
		t.Error("1-individual islands accepted")
	}
	// Hypercube with non-power-of-two.
	cfg2 := Config{Base: baseConfig(2), Islands: 6}
	cfg2.Base.Crossover = ga.Uniform{}
	if _, err := New(g, cfg2); err == nil {
		t.Error("6-island hypercube accepted")
	}
}

func TestPaperConfiguration(t *testing.T) {
	// Paper: total population 320, 16 subpopulations, 4-d hypercube.
	g := gen.Mesh(50, 2)
	cfg := Config{
		Base:     ga.Config{Parts: 4, Crossover: ga.Uniform{}, Seed: 1},
		Islands:  16,
		Topology: Hypercube{},
	}
	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Islands()) != 16 {
		t.Fatalf("%d islands", len(m.Islands()))
	}
	for _, e := range m.Islands() {
		if len(e.Population()) != 20 {
			t.Fatalf("island population %d, want 320/16 = 20", len(e.Population()))
		}
	}
}

func TestRunImprovesAndCounts(t *testing.T) {
	g := gen.Mesh(60, 3)
	cfg := Config{
		Base:    ga.Config{Parts: 4, PopSize: 64, Crossover: ga.Uniform{}, Seed: 5},
		Islands: 4, Topology: Ring{},
		MigrationInterval: 3,
	}
	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := m.Best().Fitness
	m.Run(12)
	if m.Generation() != 12 {
		t.Errorf("generation = %d, want 12", m.Generation())
	}
	if m.Best().Fitness < first {
		t.Error("best regressed over run")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	g := gen.Mesh(50, 4)
	mk := func(parallel bool) []uint16 {
		cfg := Config{
			Base:     ga.Config{Parts: 4, PopSize: 48, Crossover: ga.Uniform{}, Seed: 9},
			Islands:  4,
			Topology: Ring{},
			Parallel: parallel,
		}
		m, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.Run(10)
		return m.Best().Part.Assign
	}
	seq := mk(false)
	par := mk(true)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatal("parallel and sequential runs diverged")
		}
	}
}

func TestMigrationSpreadsBest(t *testing.T) {
	// With migration, a strong seed given to island 0 should reach other
	// islands' populations. Use CrossoverFactory to give island 0 a seeded
	// engine is not possible (seeds are global), so instead verify that
	// after migration every island's best is at least as good as the
	// pre-migration global best would suggest: run with and without
	// migration and compare the aggregate.
	g := gen.PaperGraph(98)
	run := func(interval int) float64 {
		cfg := Config{
			Base:              ga.Config{Parts: 4, PopSize: 48, Crossover: ga.Uniform{}, Seed: 31},
			Islands:           4,
			Topology:          Ring{},
			MigrationInterval: interval,
		}
		m, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.Run(30)
		// Return the mean of island bests: migration should pull laggards up.
		var sum float64
		for _, e := range m.Islands() {
			sum += e.Best().Fitness
		}
		return sum / float64(len(m.Islands()))
	}
	with := run(3)
	without := run(1000) // interval longer than the run: no migration
	if with < without {
		t.Errorf("migration hurt mean island best: %v < %v", with, without)
	}
}

func TestCrossoverFactoryPerIslandState(t *testing.T) {
	// DKNUX holds mutable per-run state; the factory must give each island
	// its own instance.
	g := gen.Mesh(40, 6)
	rng := rand.New(rand.NewSource(7))
	made := map[ga.Crossover]bool{}
	cfg := Config{
		Base:    ga.Config{Parts: 2, PopSize: 32, Seed: 3},
		Islands: 4, Topology: Ring{},
		CrossoverFactory: func(island int) ga.Crossover {
			op := ga.NewDKNUX(partition.RandomBalanced(40, 2, rng))
			made[op] = true
			return op
		},
	}
	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(made) != 4 {
		t.Errorf("factory called %d times, want 4", len(made))
	}
	m.Run(6)
}

func TestBestCutSeries(t *testing.T) {
	g := gen.Mesh(50, 8)
	cfg := Config{
		Base:    ga.Config{Parts: 4, PopSize: 32, Crossover: ga.Uniform{}, Seed: 11},
		Islands: 4, Topology: Ring{},
	}
	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(10)
	s := m.BestCutSeries()
	if len(s) != 11 { // gen 0 plus 10 steps
		t.Fatalf("cut series length %d, want 11", len(s))
	}
	fs := m.BestFitnessSeries()
	if len(fs) != 11 {
		t.Fatalf("fitness series length %d, want 11", len(fs))
	}
	// Fitness series is the max across islands of individually monotone
	// series, so it must be non-decreasing.
	for i := 1; i < len(fs); i++ {
		if fs[i] < fs[i-1] {
			t.Errorf("fitness series decreased at %d: %v -> %v", i, fs[i-1], fs[i])
		}
	}
}

// Property: all topologies give symmetric adjacency and in-range neighbors.
func TestQuickTopologySymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tops := []struct {
			t Topology
			n int
		}{
			{Hypercube{}, 1 << (1 + rng.Intn(5))},
			{Ring{}, 2 + rng.Intn(20)},
			{Mesh{Rows: 1 + rng.Intn(5), Cols: 1 + rng.Intn(5)}, 0},
		}
		tops[2].n = tops[2].t.(Mesh).Rows * tops[2].t.(Mesh).Cols
		for _, tc := range tops {
			if tc.t.Validate(tc.n) != nil {
				if _, isMesh := tc.t.(Mesh); isMesh && tc.n < 2 {
					continue
				}
				return false
			}
			for i := 0; i < tc.n; i++ {
				for _, j := range tc.t.Neighbors(i, tc.n) {
					if j < 0 || j >= tc.n || j == i {
						return false
					}
					found := false
					for _, k := range tc.t.Neighbors(j, tc.n) {
						if k == i {
							found = true
						}
					}
					if !found {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
