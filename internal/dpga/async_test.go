package dpga

import (
	"testing"

	"repro/internal/ga"
	"repro/internal/gen"
)

func asyncConfig(seed int64) Config {
	return Config{
		Base:              ga.Config{Parts: 4, PopSize: 48, Crossover: ga.Uniform{}, Seed: seed},
		Islands:           4,
		Topology:          Ring{},
		MigrationInterval: 2,
	}
}

func TestAsyncRunImproves(t *testing.T) {
	g := gen.Mesh(60, 1)
	m, err := NewAsync(g, asyncConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	first := m.Best().Fitness
	m.Run(20)
	if m.Best().Fitness < first {
		t.Error("async run regressed")
	}
	for _, e := range m.Islands() {
		if e.Generation() != 20 {
			t.Errorf("island at generation %d, want 20", e.Generation())
		}
	}
}

func TestAsyncRepeatedRuns(t *testing.T) {
	g := gen.Mesh(40, 2)
	m, err := NewAsync(g, asyncConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	m.Run(5)
	mid := m.Best().Fitness
	m.Run(5)
	if m.Best().Fitness < mid {
		t.Error("second Run regressed")
	}
}

func TestAsyncValidation(t *testing.T) {
	g := gen.Mesh(30, 3)
	bad := asyncConfig(1)
	bad.Base.Crossover = nil
	if _, err := NewAsync(g, bad); err == nil {
		t.Error("config without crossover accepted")
	}
}

func TestAsyncMigrantsFlow(t *testing.T) {
	// After a run, inboxes may hold leftover migrants; draining must not
	// panic and must return promptly.
	g := gen.Mesh(40, 4)
	m, err := NewAsync(g, asyncConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	m.Run(10)
	total := 0
	for i := range m.Islands() {
		total += m.DrainInbox(i)
	}
	// Migrants were exchanged every 2 generations among 4 islands; at least
	// some traffic must have occurred (either consumed or left over). We
	// can't assert consumption deterministically, so assert drain safety
	// and bounded leftovers.
	if total < 0 || total > 4*64 {
		t.Errorf("drained %d migrants", total)
	}
}

func TestAsyncDrainPanicsOnBadIsland(t *testing.T) {
	g := gen.Mesh(30, 5)
	m, err := NewAsync(g, asyncConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.DrainInbox(99)
}
