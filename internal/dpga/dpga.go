// Package dpga implements the paper's coarse-grained distributed-population
// genetic algorithm (§3.4): the population is divided into subpopulations
// ("islands") arranged in a communication topology (the paper uses a
// four-dimensional hypercube of 16 subpopulations); crossover is restricted
// to members of the same subpopulation, and each island periodically sends
// copies of its best individuals to its topological neighbors.
//
// Islands advance independently between migrations, so the model runs
// either sequentially or with one goroutine per island; results are
// bit-identical in both modes because every island owns its RNG and
// migration happens at a barrier.
package dpga

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/ga"
	"repro/internal/graph"
	"repro/internal/partition"
)

// Topology defines island adjacency. Islands are numbered 0..n-1.
type Topology interface {
	// Name identifies the topology in reports.
	Name() string
	// Validate reports whether the topology supports n islands.
	Validate(n int) error
	// Neighbors returns the islands that island i sends migrants to.
	Neighbors(i, n int) []int
}

// Hypercube connects island i to every island differing in exactly one bit
// of its index; n must be a power of two. With n=16 this is the paper's
// 4-dimensional hypercube.
type Hypercube struct{}

// Name implements Topology.
func (Hypercube) Name() string { return "hypercube" }

// Validate implements Topology.
func (Hypercube) Validate(n int) error {
	if n <= 0 || n&(n-1) != 0 {
		return fmt.Errorf("dpga: hypercube needs a power-of-two island count, got %d", n)
	}
	return nil
}

// Neighbors implements Topology.
func (Hypercube) Neighbors(i, n int) []int {
	var out []int
	for bit := 1; bit < n; bit <<= 1 {
		out = append(out, i^bit)
	}
	return out
}

// Ring connects island i to (i±1) mod n.
type Ring struct{}

// Name implements Topology.
func (Ring) Name() string { return "ring" }

// Validate implements Topology.
func (Ring) Validate(n int) error {
	if n < 2 {
		return fmt.Errorf("dpga: ring needs >= 2 islands, got %d", n)
	}
	return nil
}

// Neighbors implements Topology.
func (Ring) Neighbors(i, n int) []int {
	if n == 2 {
		return []int{1 - i}
	}
	return []int{(i + 1) % n, (i - 1 + n) % n}
}

// Mesh arranges islands in a Rows x Cols grid with 4-neighbor adjacency.
type Mesh struct {
	Rows, Cols int
}

// Name implements Topology.
func (m Mesh) Name() string { return fmt.Sprintf("mesh-%dx%d", m.Rows, m.Cols) }

// Validate implements Topology.
func (m Mesh) Validate(n int) error {
	if m.Rows*m.Cols != n {
		return fmt.Errorf("dpga: mesh %dx%d cannot hold %d islands", m.Rows, m.Cols, n)
	}
	return nil
}

// Neighbors implements Topology.
func (m Mesh) Neighbors(i, n int) []int {
	r, c := i/m.Cols, i%m.Cols
	var out []int
	if r > 0 {
		out = append(out, i-m.Cols)
	}
	if r+1 < m.Rows {
		out = append(out, i+m.Cols)
	}
	if c > 0 {
		out = append(out, i-1)
	}
	if c+1 < m.Cols {
		out = append(out, i+1)
	}
	return out
}

// Config parameterizes a distributed run. Island population size is
// Base.PopSize/Islands (the paper runs total population 320 over 16
// islands of 20).
type Config struct {
	Base    ga.Config // shared GA parameters; PopSize is the TOTAL population
	Islands int       // number of subpopulations; default 16 (paper)

	Topology          Topology // default Hypercube{}
	MigrationInterval int      // generations between migrations; default 5
	Migrants          int      // best individuals sent per neighbor; default 1

	// Parallel runs one goroutine per island between migration barriers.
	// Results are identical to the sequential mode; this only changes
	// wall-clock time on multicore hosts.
	//
	// Base.EvalWorkers composes with this knob: each island engine
	// evaluates its offspring on its own worker pool. When Parallel is set
	// and Base.EvalWorkers is 0, islands default to one evaluation worker
	// each (the islands themselves already saturate the cores); in the
	// sequential mode the 0 default resolves to all cores inside each
	// island, so a sequential model still evaluates in parallel. Every
	// combination produces bit-identical results.
	Parallel bool

	// CrossoverFactory builds a per-island crossover operator. Required
	// when Base.Crossover carries per-run state (KNUX/DKNUX estimates must
	// not be shared across islands); optional otherwise. The island index
	// is provided for diagnostics.
	CrossoverFactory func(island int) ga.Crossover

	// Stop, when non-nil, is polled between epochs (the migration barrier,
	// the model's only serial checkpoint): Run returns the best individual
	// found so far once it reports true. It is never consulted inside an
	// epoch, so cancellation latency is MigrationInterval generations.
	Stop func() bool
}

// Model is a running distributed GA.
type Model struct {
	g       *graph.Graph
	cfg     Config
	islands []*ga.Engine
	gen     int
}

// New validates cfg and builds the islands. Each island receives a distinct
// RNG seed derived from Base.Seed and its index, so islands explore
// independently but the whole run is reproducible.
func New(g *graph.Graph, cfg Config) (*Model, error) {
	if cfg.Islands == 0 {
		cfg.Islands = 16
	}
	if cfg.Topology == nil {
		cfg.Topology = Hypercube{}
	}
	if cfg.MigrationInterval == 0 {
		cfg.MigrationInterval = 5
	}
	if cfg.Migrants == 0 {
		cfg.Migrants = 1
	}
	if err := cfg.Topology.Validate(cfg.Islands); err != nil {
		return nil, err
	}
	if cfg.Base.Crossover == nil && cfg.CrossoverFactory == nil {
		return nil, fmt.Errorf("dpga: need Base.Crossover or CrossoverFactory")
	}
	total := cfg.Base.PopSize
	if total == 0 {
		total = 320
	}
	per := total / cfg.Islands
	if per < 2 {
		return nil, fmt.Errorf("dpga: %d islands leave %d individuals each (need >= 2)", cfg.Islands, per)
	}
	m := &Model{g: g, cfg: cfg}
	for i := 0; i < cfg.Islands; i++ {
		ic := cfg.Base
		ic.PopSize = per
		if ic.EvalWorkers == 0 && cfg.Parallel {
			// Concurrent islands already fill the machine; avoid spawning
			// Islands × GOMAXPROCS evaluation workers.
			ic.EvalWorkers = 1
		}
		// Derive independent island seeds; avoid correlated streams.
		ic.Seed = rand.New(rand.NewSource(cfg.Base.Seed + int64(i)*7919)).Int63()
		if cfg.CrossoverFactory != nil {
			ic.Crossover = cfg.CrossoverFactory(i)
		}
		e, err := ga.New(g, ic)
		if err != nil {
			return nil, fmt.Errorf("dpga: island %d: %w", i, err)
		}
		m.islands = append(m.islands, e)
	}
	return m, nil
}

// Run advances all islands by generations steps, migrating every
// MigrationInterval generations, and returns the best individual across
// islands.
func (m *Model) Run(generations int) *ga.Individual {
	for done := 0; done < generations; {
		if m.cfg.Stop != nil && m.cfg.Stop() {
			break
		}
		step := m.cfg.MigrationInterval
		if generations-done < step {
			step = generations - done
		}
		m.epoch(step)
		done += step
		if done < generations {
			m.migrate()
		}
	}
	return m.Best()
}

// epoch advances every island by steps generations, in parallel if
// configured.
func (m *Model) epoch(steps int) {
	if !m.cfg.Parallel {
		for _, e := range m.islands {
			for s := 0; s < steps; s++ {
				e.Step()
			}
		}
	} else {
		var wg sync.WaitGroup
		for _, e := range m.islands {
			wg.Add(1)
			go func(e *ga.Engine) {
				defer wg.Done()
				for s := 0; s < steps; s++ {
					e.Step()
				}
			}(e)
		}
		wg.Wait()
	}
	m.gen += steps
}

// migrate sends copies of each island's best Migrants individuals to every
// topological neighbor. Migration is applied island by island after all
// sends are collected, so the order of islands does not privilege anyone
// within an exchange round.
func (m *Model) migrate() {
	n := len(m.islands)
	type migrant struct {
		to   int
		part *partition.Partition
	}
	var batch []migrant
	for i, e := range m.islands {
		bests := topK(e.Population(), m.cfg.Migrants)
		for _, to := range m.cfg.Topology.Neighbors(i, n) {
			for _, b := range bests {
				batch = append(batch, migrant{to, b.Part.Clone()})
			}
		}
	}
	for _, mg := range batch {
		m.islands[mg.to].Inject(mg.part)
	}
}

// topK returns the k fittest individuals of pop (k <= len(pop) enforced by
// clamping).
func topK(pop []*ga.Individual, k int) []*ga.Individual {
	if k > len(pop) {
		k = len(pop)
	}
	idx := make([]int, 0, k)
	for cand := range pop {
		if len(idx) < k {
			idx = append(idx, cand)
			for t := len(idx) - 1; t > 0 && pop[idx[t]].Fitness > pop[idx[t-1]].Fitness; t-- {
				idx[t], idx[t-1] = idx[t-1], idx[t]
			}
			continue
		}
		if pop[cand].Fitness > pop[idx[k-1]].Fitness {
			idx[k-1] = cand
			for t := k - 1; t > 0 && pop[idx[t]].Fitness > pop[idx[t-1]].Fitness; t-- {
				idx[t], idx[t-1] = idx[t-1], idx[t]
			}
		}
	}
	out := make([]*ga.Individual, k)
	for i, j := range idx {
		out[i] = pop[j]
	}
	return out
}

// Best returns a clone of the best individual across all islands.
func (m *Model) Best() *ga.Individual {
	best := m.islands[0].Best()
	for _, e := range m.islands[1:] {
		if b := e.Best(); b.Fitness > best.Fitness {
			best = b
		}
	}
	return best
}

// Generation returns the number of generations completed.
func (m *Model) Generation() int { return m.gen }

// Islands exposes the underlying engines (read-only use).
func (m *Model) Islands() []*ga.Engine { return m.islands }

// BestFitnessSeries returns, for each generation index, the maximum
// best-fitness across islands. Each island's series is monotone
// non-decreasing, so the aggregate is too.
func (m *Model) BestFitnessSeries() []float64 {
	var out []float64
	for _, e := range m.islands {
		s := e.Stats().BestFitness
		for gi, v := range s {
			if gi >= len(out) {
				out = append(out, v)
			} else if v > out[gi] {
				out[gi] = v
			}
		}
	}
	return out
}

// BestCutSeries returns, for each generation index, the minimum best-cut
// across islands — the convergence trajectory used in the figures. Unlike
// fitness, cut size is not guaranteed monotone: the fittest individual can
// trade a slightly larger cut for much better balance.
func (m *Model) BestCutSeries() []float64 {
	var out []float64
	for _, e := range m.islands {
		s := e.Stats().BestCut
		for gi, v := range s {
			if gi >= len(out) {
				out = append(out, v)
			} else if v < out[gi] {
				out[gi] = v
			}
		}
	}
	return out
}
