package client

import (
	"context"
	"time"
)

// SetSleep replaces the backoff sleeper so retry tests can record the exact
// delays the policy chose without actually waiting them out.
func (c *Client) SetSleep(f func(context.Context, time.Duration) error) { c.sleep = f }
