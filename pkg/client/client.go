// Package client is the typed Go client for the partd v2 API: upload a
// graph once, fan batches of job specs out against its content address,
// wait, cancel, and read stats — with the daemon's structured errors
// surfaced as typed *APIError values instead of raw status codes.
//
// The zero-dependency wire types are shared with the server
// (internal/service), so a client and daemon built from the same tree can
// never disagree about the schema.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/service"
)

// APIError is a structured error response from the daemon: the HTTP status,
// the stable machine-readable code ("bad_parts", "quota_exceeded",
// "engine_closed", ...), and the human-readable message. RetryAfter is
// nonzero for quota refusals that carried a Retry-After header.
type APIError struct {
	Status     int
	Code       string
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("partd: %s (%d %s)", e.Message, e.Status, e.Code)
}

// IsRetryable reports whether backing off and retrying the same request can
// succeed: quota and queue refusals are retryable, caller mistakes are not.
func (e *APIError) IsRetryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Code == "unavailable"
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithName sets the X-Client identity sent with every request — the key the
// daemon's per-client quota accounting uses. Unnamed clients are keyed by
// remote address.
func WithName(name string) Option {
	return func(c *Client) { c.name = name }
}

// Client talks to one partd daemon. It is safe for concurrent use.
type Client struct {
	base string
	name string
	hc   *http.Client
}

// New builds a client for the daemon at baseURL (e.g. "http://127.0.0.1:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		hc:   &http.Client{},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do runs one JSON round trip. A 2xx body decodes into out (when non-nil);
// anything else decodes the error envelope into an *APIError.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.name != "" {
		req.Header.Set("X-Client", c.name)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		apiErr := &APIError{Status: resp.StatusCode, Code: "unknown"}
		var envelope struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if json.Unmarshal(data, &envelope) == nil && envelope.Error.Code != "" {
			apiErr.Code = envelope.Error.Code
			apiErr.Message = envelope.Error.Message
		} else {
			apiErr.Message = strings.TrimSpace(string(data))
		}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
		return apiErr
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

// UploadGraph uploads one serialized graph (format "metis", "edgelist", or
// "text"; empty selects metis) and returns its content address. Uploading a
// graph the daemon already stores is cheap: it deduplicates server-side and
// returns the existing address with Existed set.
func (c *Client) UploadGraph(ctx context.Context, format, payload string) (service.GraphPutResponse, error) {
	var out service.GraphPutResponse
	err := c.do(ctx, http.MethodPut, "/v1/graphs", service.GraphPutRequest{Format: format, Graph: payload}, &out)
	return out, err
}

// Graph returns stored-graph metadata for a content address.
func (c *Client) Graph(ctx context.Context, hash string) (service.StoredGraph, error) {
	var out service.StoredGraph
	err := c.do(ctx, http.MethodGet, "/v1/graphs/"+hash, nil, &out)
	return out, err
}

// SubmitBatch fans specs out against a stored graph and returns immediately
// with one queued/cached JobInfo per spec.
func (c *Client) SubmitBatch(ctx context.Context, graphHash string, specs []service.JobSpec) (service.BatchResponse, error) {
	var out service.BatchResponse
	err := c.do(ctx, http.MethodPost, "/v1/jobs", service.BatchRequest{Graph: graphHash, Specs: specs}, &out)
	return out, err
}

// SubmitBatchWait is SubmitBatch but holds the request until every job in
// the batch reaches a terminal state.
func (c *Client) SubmitBatchWait(ctx context.Context, graphHash string, specs []service.JobSpec) (service.BatchResponse, error) {
	var out service.BatchResponse
	err := c.do(ctx, http.MethodPost, "/v1/jobs", service.BatchRequest{Graph: graphHash, Specs: specs, Wait: true}, &out)
	return out, err
}

// Partition is the legacy one-shot endpoint: inline graph, one spec.
func (c *Client) Partition(ctx context.Context, req service.PartitionRequest) (service.JobInfo, error) {
	var out service.JobInfo
	err := c.do(ctx, http.MethodPost, "/v1/partition", req, &out)
	return out, err
}

// Job polls one job.
func (c *Client) Job(ctx context.Context, id string) (service.JobInfo, error) {
	var out service.JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out)
	return out, err
}

// WaitJob blocks server-side until the job reaches a terminal state (done,
// failed, or cancelled) or ctx is cancelled.
func (c *Client) WaitJob(ctx context.Context, id string) (service.JobInfo, error) {
	var out service.JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"?wait=1", nil, &out)
	return out, err
}

// Cancel cancels one job and returns its post-cancel snapshot. Cancelling
// an already-cancelled job succeeds idempotently; a finished job fails with
// an *APIError coded "job_finished".
func (c *Client) Cancel(ctx context.Context, id string) (service.JobInfo, error) {
	var out service.JobInfo
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &out)
	return out, err
}

// Stats reads the daemon's engine, store, and quota counters.
func (c *Client) Stats(ctx context.Context) (service.StatsResponse, error) {
	var out service.StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// Algos lists the algorithm registry with declared constraints.
func (c *Client) Algos(ctx context.Context) (service.AlgosResponse, error) {
	var out service.AlgosResponse
	err := c.do(ctx, http.MethodGet, "/v1/algos", nil, &out)
	return out, err
}
