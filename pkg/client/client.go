// Package client is the typed Go client for the partd v2 API: upload a
// graph once, fan batches of job specs out against its content address,
// wait, cancel, and read stats — with the daemon's structured errors
// surfaced as typed *APIError values instead of raw status codes.
//
// The zero-dependency wire types are shared with the server
// (internal/service), so a client and daemon built from the same tree can
// never disagree about the schema.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/service"
)

// APIError is a structured error response from the daemon: the HTTP status,
// the stable machine-readable code ("bad_parts", "quota_exceeded",
// "engine_closed", ...), and the human-readable message. RetryAfter is
// nonzero for quota refusals that carried a Retry-After header.
type APIError struct {
	Status     int
	Code       string
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("partd: %s (%d %s)", e.Message, e.Status, e.Code)
}

// IsRetryable reports whether backing off and retrying the same request can
// succeed: quota and queue refusals (429), gateway failures (502), and
// service unavailability (503) are retryable — the fleet router resolves a
// down shard to its next replica between attempts — while caller mistakes
// are not.
func (e *APIError) IsRetryable() bool {
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable:
		return true
	}
	return e.Code == "unavailable"
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithName sets the X-Client identity sent with every request — the key the
// daemon's per-client quota accounting uses. Unnamed clients are keyed by
// remote address.
func WithName(name string) Option {
	return func(c *Client) { c.name = name }
}

// WithToken sets the bearer token sent with every request. Daemons running
// with -tokens refuse unauthenticated requests, and the token — not
// X-Client — then decides quota identity.
func WithToken(token string) Option {
	return func(c *Client) { c.token = token }
}

// RetryPolicy controls automatic retry of failed requests.
//
// Two failure classes are retried. Structured refusals whose
// APIError.IsRetryable is true (quota and queue 429s, gateway 502s,
// unavailability 503s) are retried for every method: the daemon refused the
// request without processing it, so resubmission is safe. Transport errors
// (connection refused, reset) are retried only for idempotent methods — or
// for POSTs too when RetryPosts is set, which is sound against partd because
// submissions are content-addressed and coalesce server-side.
//
// The delay before attempt n+1 is BaseDelay<<n capped at MaxDelay, raised to
// the server's Retry-After when one was sent.
type RetryPolicy struct {
	MaxAttempts int           // total attempts, including the first (<= 1 disables retry)
	BaseDelay   time.Duration // first backoff step (0 = 100ms)
	MaxDelay    time.Duration // backoff cap (0 = 5s)
	RetryPosts  bool          // retry POSTs on transport errors too
}

// WithRetry enables automatic retry under p.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) { c.retry = p }
}

// Client talks to one partd daemon (or a partroute fleet router — the wire
// surface is identical). It is safe for concurrent use.
type Client struct {
	base  string
	name  string
	token string
	retry RetryPolicy
	hc    *http.Client
	sleep func(ctx context.Context, d time.Duration) error // test seam
}

// New builds a client for the daemon at baseURL (e.g. "http://127.0.0.1:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		hc:   &http.Client{},
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do runs one JSON request under the retry policy. A 2xx body decodes into
// out (when non-nil); anything else decodes the error envelope into an
// *APIError.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		body = data
	}
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, c.backoff(attempt-1, lastErr)); err != nil {
				return lastErr // the context died mid-backoff; report the real failure
			}
		}
		err := c.doOnce(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !c.shouldRetry(method, err) || ctx.Err() != nil {
			return err
		}
	}
	return lastErr
}

// shouldRetry classifies one failure under the policy; see RetryPolicy.
func (c *Client) shouldRetry(method string, err error) bool {
	if apiErr, ok := err.(*APIError); ok {
		return apiErr.IsRetryable()
	}
	// Transport error: the request may or may not have been processed.
	switch method {
	case http.MethodGet, http.MethodHead, http.MethodPut, http.MethodDelete:
		return true
	default:
		return c.retry.RetryPosts
	}
}

// backoff computes the pause after the attempt-th try (0-based): exponential
// from BaseDelay, capped at MaxDelay, raised to the server's Retry-After.
func (c *Client) backoff(attempt int, err error) time.Duration {
	base, limit := c.retry.BaseDelay, c.retry.MaxDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if limit <= 0 {
		limit = 5 * time.Second
	}
	d := base << attempt
	if d > limit || d <= 0 {
		d = limit
	}
	if apiErr, ok := err.(*APIError); ok && apiErr.RetryAfter > d {
		d = apiErr.RetryAfter
	}
	return d
}

func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.name != "" {
		req.Header.Set("X-Client", c.name)
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		apiErr := &APIError{Status: resp.StatusCode, Code: "unknown"}
		var envelope struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if json.Unmarshal(data, &envelope) == nil && envelope.Error.Code != "" {
			apiErr.Code = envelope.Error.Code
			apiErr.Message = envelope.Error.Message
		} else {
			apiErr.Message = strings.TrimSpace(string(data))
		}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
		return apiErr
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

// UploadGraph uploads one serialized graph (format "metis", "edgelist", or
// "text"; empty selects metis) and returns its content address. Uploading a
// graph the daemon already stores is cheap: it deduplicates server-side and
// returns the existing address with Existed set.
func (c *Client) UploadGraph(ctx context.Context, format, payload string) (service.GraphPutResponse, error) {
	var out service.GraphPutResponse
	err := c.do(ctx, http.MethodPut, "/v1/graphs", service.GraphPutRequest{Format: format, Graph: payload}, &out)
	return out, err
}

// Graph returns stored-graph metadata for a content address.
func (c *Client) Graph(ctx context.Context, hash string) (service.StoredGraph, error) {
	var out service.StoredGraph
	err := c.do(ctx, http.MethodGet, "/v1/graphs/"+hash, nil, &out)
	return out, err
}

// SubmitBatch fans specs out against a stored graph and returns immediately
// with one queued/cached JobInfo per spec.
func (c *Client) SubmitBatch(ctx context.Context, graphHash string, specs []service.JobSpec) (service.BatchResponse, error) {
	var out service.BatchResponse
	err := c.do(ctx, http.MethodPost, "/v1/jobs", service.BatchRequest{Graph: graphHash, Specs: specs}, &out)
	return out, err
}

// SubmitBatchWait is SubmitBatch but holds the request until every job in
// the batch reaches a terminal state.
func (c *Client) SubmitBatchWait(ctx context.Context, graphHash string, specs []service.JobSpec) (service.BatchResponse, error) {
	var out service.BatchResponse
	err := c.do(ctx, http.MethodPost, "/v1/jobs", service.BatchRequest{Graph: graphHash, Specs: specs, Wait: true}, &out)
	return out, err
}

// Partition is the legacy one-shot endpoint: inline graph, one spec.
func (c *Client) Partition(ctx context.Context, req service.PartitionRequest) (service.JobInfo, error) {
	var out service.JobInfo
	err := c.do(ctx, http.MethodPost, "/v1/partition", req, &out)
	return out, err
}

// Job polls one job.
func (c *Client) Job(ctx context.Context, id string) (service.JobInfo, error) {
	var out service.JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out)
	return out, err
}

// WaitJob blocks server-side until the job reaches a terminal state (done,
// failed, or cancelled) or ctx is cancelled.
func (c *Client) WaitJob(ctx context.Context, id string) (service.JobInfo, error) {
	var out service.JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"?wait=1", nil, &out)
	return out, err
}

// Cancel cancels one job and returns its post-cancel snapshot. Cancelling
// an already-cancelled job succeeds idempotently; a finished job fails with
// an *APIError coded "job_finished".
func (c *Client) Cancel(ctx context.Context, id string) (service.JobInfo, error) {
	var out service.JobInfo
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &out)
	return out, err
}

// Stats reads the daemon's engine, store, and quota counters.
func (c *Client) Stats(ctx context.Context) (service.StatsResponse, error) {
	var out service.StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// Algos lists the algorithm registry with declared constraints.
func (c *Client) Algos(ctx context.Context) (service.AlgosResponse, error) {
	var out service.AlgosResponse
	err := c.do(ctx, http.MethodGet, "/v1/algos", nil, &out)
	return out, err
}
