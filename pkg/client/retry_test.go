package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
	"repro/pkg/client"
)

// recordSleeps wires a no-op sleeper into c that records each backoff.
func recordSleeps(c *client.Client) *[]time.Duration {
	var slept []time.Duration
	c.SetSleep(func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	})
	return &slept
}

// A 429 with Retry-After stretches the backoff to the server's ask.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "3")
			service.WriteError(w, http.StatusTooManyRequests, "quota_exceeded", "over quota")
			return
		}
		service.WriteJSON(w, http.StatusOK, service.StatsResponse{Version: service.APIVersion})
	}))
	t.Cleanup(ts.Close)

	c := client.New(ts.URL, client.WithRetry(client.RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond}))
	slept := recordSleeps(c)
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatalf("stats after retries: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d requests, want 3", calls.Load())
	}
	want := []time.Duration{3 * time.Second, 3 * time.Second}
	if len(*slept) != len(want) || (*slept)[0] != want[0] || (*slept)[1] != want[1] {
		t.Fatalf("backoffs %v, want %v (Retry-After must override the base delay)", *slept, want)
	}
}

// Caller mistakes (4xx other than 429) fail immediately: no retry can fix a
// bad request.
func TestNoRetryOnCallerError(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		service.WriteError(w, http.StatusBadRequest, "bad_graph_ref", "nope")
	}))
	t.Cleanup(ts.Close)

	c := client.New(ts.URL, client.WithRetry(client.RetryPolicy{MaxAttempts: 5}))
	recordSleeps(c)
	_, err := c.Graph(context.Background(), "sha256:junk")
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "bad_graph_ref" {
		t.Fatalf("err = %v", err)
	}
	if apiErr.IsRetryable() {
		t.Fatal("400 reported as retryable")
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1", calls.Load())
	}
}

// A connection-level failure on an idempotent request retries and recovers —
// the shape of routing through a router whose shard just went down.
func TestTransportErrorRetriesIdempotent(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			panic(http.ErrAbortHandler) // kill the connection mid-request
		}
		service.WriteJSON(w, http.StatusOK, service.StatsResponse{Version: service.APIVersion})
	}))
	t.Cleanup(ts.Close)

	c := client.New(ts.URL, client.WithRetry(client.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}))
	recordSleeps(c)
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatalf("stats after transport retry: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2", calls.Load())
	}
}

// POSTs are not retried on transport errors unless the caller opts in:
// the client cannot know whether the submission was processed.
func TestTransportErrorPostPolicy(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		panic(http.ErrAbortHandler)
	}))
	t.Cleanup(ts.Close)

	specs := []service.JobSpec{{Algo: "kl", Parts: 2}}
	hash := "sha256:0000000000000000000000000000000000000000000000000000000000000000"

	c := client.New(ts.URL, client.WithRetry(client.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}))
	recordSleeps(c)
	if _, err := c.SubmitBatch(context.Background(), hash, specs); err == nil {
		t.Fatal("submit against aborting server succeeded")
	}
	if calls.Load() != 1 {
		t.Fatalf("POST retried on transport error: %d calls", calls.Load())
	}

	calls.Store(0)
	c = client.New(ts.URL, client.WithRetry(client.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, RetryPosts: true}))
	recordSleeps(c)
	if _, err := c.SubmitBatch(context.Background(), hash, specs); err == nil {
		t.Fatal("submit against aborting server succeeded")
	}
	if calls.Load() != 3 {
		t.Fatalf("POST with RetryPosts saw %d calls, want 3", calls.Load())
	}
}

// Retryable 503s back off exponentially from BaseDelay up to MaxDelay.
func TestBackoffGrowsAndCaps(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		service.WriteError(w, http.StatusServiceUnavailable, "unavailable", "not yet")
	}))
	t.Cleanup(ts.Close)

	c := client.New(ts.URL, client.WithRetry(client.RetryPolicy{
		MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: 400 * time.Millisecond,
	}))
	slept := recordSleeps(c)
	_, err := c.Stats(context.Background())
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v", err)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond, 400 * time.Millisecond}
	if len(*slept) != len(want) {
		t.Fatalf("backoffs %v, want %v", *slept, want)
	}
	for i := range want {
		if (*slept)[i] != want[i] {
			t.Fatalf("backoffs %v, want %v", *slept, want)
		}
	}
}

// WithToken authenticates against a -tokens daemon, and the token identity
// drives quota accounting through the typed client.
func TestClientTokenAuth(t *testing.T) {
	auth, err := service.NewAuth(map[string]string{"tok-z": "zoe"})
	if err != nil {
		t.Fatal(err)
	}
	ts := newDaemon(t, service.WithAuth(auth))

	if _, err := client.New(ts.URL).Stats(context.Background()); err == nil {
		t.Fatal("unauthenticated stats succeeded against an authed daemon")
	}
	st, err := client.New(ts.URL, client.WithToken("tok-z")).Stats(context.Background())
	if err != nil {
		t.Fatalf("authenticated stats: %v", err)
	}
	if st.Version != service.APIVersion {
		t.Fatalf("version %q", st.Version)
	}
}
