package client_test

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"repro/internal/gen"
	"repro/internal/gio"
	"repro/internal/service"
	"repro/pkg/client"
)

func newDaemon(t *testing.T, opts ...service.HandlerOption) *httptest.Server {
	t.Helper()
	e := service.New(service.Config{Workers: 2})
	ts := httptest.NewServer(service.NewHandler(e, opts...))
	t.Cleanup(func() {
		ts.Close()
		e.Close()
	})
	return ts
}

func metisPayload(t *testing.T, n int) string {
	t.Helper()
	var buf bytes.Buffer
	if err := gio.WriteMETIS(&buf, gen.Mesh(n, 23)); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// The full client workflow: upload once, batch against the content address,
// wait, poll, read stats and the registry.
func TestClientEndToEnd(t *testing.T) {
	ts := newDaemon(t)
	cl := client.New(ts.URL, client.WithName("e2e"))
	ctx := context.Background()

	up, err := cl.UploadGraph(ctx, "metis", metisPayload(t, 250))
	if err != nil {
		t.Fatal(err)
	}
	if up.Existed || up.Nodes != 250 {
		t.Fatalf("upload %+v", up)
	}
	meta, err := cl.Graph(ctx, up.Hash)
	if err != nil || meta.Nodes != 250 {
		t.Fatalf("graph meta %+v err %v", meta, err)
	}

	batch, err := cl.SubmitBatchWait(ctx, up.Hash, []service.JobSpec{
		{Algo: "multilevel-kl", Parts: 4, Seed: 1},
		{Algo: "fm", Parts: 4, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Jobs) != 2 {
		t.Fatalf("%d jobs", len(batch.Jobs))
	}
	for i, j := range batch.Jobs {
		if j.State != service.StateDone || len(j.Result.Assign) != 250 {
			t.Fatalf("job %d: %+v", i, j)
		}
	}

	// Poll and wait individually.
	got, err := cl.Job(ctx, batch.Jobs[0].ID)
	if err != nil || got.State != service.StateDone {
		t.Fatalf("poll: %+v err %v", got, err)
	}
	got, err = cl.WaitJob(ctx, batch.Jobs[1].ID)
	if err != nil || got.State != service.StateDone {
		t.Fatalf("wait: %+v err %v", got, err)
	}

	// The legacy path through the same client.
	legacy, err := cl.Partition(ctx, service.PartitionRequest{
		Algo: "multilevel-kl", Parts: 4, Seed: 1, Graph: metisPayload(t, 250), Wait: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Same content, same spec — same cache key, so this is a cache hit with
	// the bit-identical assignment.
	if !legacy.Cached {
		t.Error("legacy resubmission of the stored graph missed the cache")
	}
	for v := range legacy.Result.Assign {
		if legacy.Result.Assign[v] != batch.Jobs[0].Result.Assign[v] {
			t.Fatalf("legacy and batch assignments differ at node %d", v)
		}
	}

	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Version != service.APIVersion || stats.Store.Graphs != 1 {
		t.Errorf("stats %+v", stats)
	}
	if stats.CacheHits == 0 {
		t.Error("no cache hit recorded")
	}
	algos, err := cl.Algos(ctx)
	if err != nil || algos.API != service.APIVersion || len(algos.Algos) < 15 {
		t.Fatalf("algos %d entries api %q err %v", len(algos.Algos), algos.API, err)
	}
}

// Structured daemon errors surface as typed *APIError values.
func TestClientTypedErrors(t *testing.T) {
	ts := newDaemon(t)
	cl := client.New(ts.URL, client.WithName("errs"))
	ctx := context.Background()

	_, err := cl.Partition(ctx, service.PartitionRequest{Algo: "nope", Parts: 2, Graph: metisPayload(t, 50)})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "unknown_algo" || apiErr.Status != 400 {
		t.Fatalf("got %v, want unknown_algo APIError", err)
	}
	if apiErr.IsRetryable() {
		t.Error("caller mistake reported as retryable")
	}

	_, err = cl.Cancel(ctx, "zzz")
	if !errors.As(err, &apiErr) || apiErr.Code != "not_found" {
		t.Fatalf("cancel unknown: %v", err)
	}

	_, err = cl.SubmitBatch(ctx, "bogus", []service.JobSpec{{Algo: "kl", Parts: 2}})
	if !errors.As(err, &apiErr) || apiErr.Code != "bad_graph_ref" {
		t.Fatalf("bad ref: %v", err)
	}
}

// Quota refusals carry the retry hint through to the typed error.
func TestClientQuotaRetryAfter(t *testing.T) {
	ts := newDaemon(t, service.WithQuota(service.NewQuota(0.01, 1)))
	cl := client.New(ts.URL, client.WithName("greedy"))
	ctx := context.Background()

	if _, err := cl.UploadGraph(ctx, "metis", metisPayload(t, 50)); err != nil {
		t.Fatal(err)
	}
	_, err := cl.UploadGraph(ctx, "metis", metisPayload(t, 60))
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "quota_exceeded" {
		t.Fatalf("got %v, want quota_exceeded", err)
	}
	if !apiErr.IsRetryable() || apiErr.RetryAfter <= 0 {
		t.Errorf("quota error not retryable with hint: %+v", apiErr)
	}
}
