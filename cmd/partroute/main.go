// Command partroute is the partd fleet router: a stateless proxy that
// spreads the v2 API across many partd shards by consistent-hashing each
// graph's content address (internal/ring, internal/fleet).
//
// Usage:
//
//	partroute -addr :9090 \
//	    -shards s1=127.0.0.1:8081,s2=127.0.0.1:8082,s3=127.0.0.1:8083
//
// Clients use the router exactly like a single partd daemon — same
// endpoints, same error envelopes — except job ids come back
// shard-qualified ("s1/j00000042") so polls and cancels route themselves.
// GET /v1/stats aggregates the fleet (summed counters plus a per-shard
// breakdown under "fleet"); GET /v1/algos advertises the intersection of the
// live shards' registries. Shards that stop answering are marked down (by
// the background health check and passively on transport errors) and keyed
// requests re-resolve to the next replica on the ring until they return.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/ring"
	"repro/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":9090", "listen address (use :0 for an ephemeral port)")
		addrFile = flag.String("addr-file", "", "write the resolved listen address to this file once serving (for scripts using -addr :0)")
		shards   = flag.String("shards", "", "fleet members as name=host:port,... (required; names prefix job ids)")
		vnodes   = flag.Int("vnodes", 0, "virtual nodes per shard on the hash ring (0 = default)")
		token    = flag.String("token", "", "bearer token for router-originated fleet calls (stats/algos fan-out) when shards run with -tokens")
		health   = flag.Duration("health-interval", 2*time.Second, "active shard health-check period (0 disables; passive markdown still applies)")
	)
	flag.Parse()
	if *shards == "" {
		log.Fatal("partroute: -shards is required (e.g. -shards s1=host:port,s2=host:port)")
	}
	members, err := ring.ParseMembers(*shards)
	if err != nil {
		log.Fatalf("partroute: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	interval := *health
	if interval == 0 {
		interval = -1 // Config: 0 means default, negative disables
	}
	rt, err := fleet.New(fleet.Config{
		Members:        members,
		VNodes:         *vnodes,
		Token:          *token,
		HealthInterval: interval,
		Logf:           log.Printf,
	})
	if err != nil {
		log.Fatalf("partroute: %v", err)
	}
	defer rt.Close()
	rt.Probe() // know the fleet's state before serving

	srv := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("partroute: %v", err)
	}
	log.Printf("partroute: routing %d shards on %s (api %s)", len(members), ln.Addr(), service.APIVersion)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatalf("partroute: writing -addr-file: %v", err)
		}
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		log.Fatalf("partroute: %v", err)
	case <-ctx.Done():
	}
	log.Print("partroute: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("partroute: shutdown: %v", err)
	}
}
