// Command partd is the partition-as-a-service daemon: an HTTP JSON API over
// the unified algorithm registry, with a bounded worker pool and a
// content-addressed result cache (see internal/service).
//
// Usage:
//
//	partd -addr :8080 -workers 4 -cache-mb 128
//
// Endpoints:
//
//	POST /v1/partition      submit a METIS/edge-list/text graph for partitioning
//	GET  /v1/jobs/{id}      poll a job (?wait=1 blocks until it completes)
//	GET  /v1/algos          the algorithm registry with declared constraints
//	GET  /v1/stats          worker, job, and cache counters
//
// See README.md for the request schema and an example curl session. The
// daemon shuts down gracefully on SIGINT/SIGTERM: in-flight requests and
// running jobs finish, queued jobs fail with a shutdown error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		addrFile = flag.String("addr-file", "", "write the resolved listen address to this file once serving (for scripts using -addr :0)")
		workers  = flag.Int("workers", 0, "concurrent partition computations (0 = GOMAXPROCS)")
		cacheMB  = flag.Int("cache-mb", 0, "result cache budget in MiB of payload (0 = default 64)")
		jobPar   = flag.Int("job-parallelism", 0, "per-computation worker width; never changes results (0 = auto)")
	)
	flag.Parse()

	// Install signal handling before anything announces readiness: scripts
	// kill the daemon as soon as the addr file appears, and a SIGTERM
	// racing ahead of the handler would hit the default disposition and
	// skip the graceful path.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	engine := service.New(service.Config{
		Workers:        *workers,
		CacheBytes:     int64(*cacheMB) << 20,
		JobParallelism: *jobPar,
	})
	srv := &http.Server{
		Handler:           service.NewHandler(engine),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("partd: %v", err)
	}
	log.Printf("partd: listening on %s", ln.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatalf("partd: writing -addr-file: %v", err)
		}
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		log.Fatalf("partd: %v", err)
	case <-ctx.Done():
	}
	log.Print("partd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("partd: shutdown: %v", err)
	}
	engine.Close()
	s := engine.Stats()
	fmt.Printf("partd: served %d jobs (%d computed, %d failed, %d cache hits, %d coalesced, %d evictions)\n",
		s.JobsSubmitted, s.JobsDone, s.JobsFailed, s.CacheHits, s.Coalesced, s.CacheEvictions)
}
