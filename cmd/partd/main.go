// Command partd is the partition-as-a-service daemon: a multi-tenant HTTP
// JSON API over the unified algorithm registry, with a content-addressed
// graph store, batch job submission, cancellation, per-client quotas, a
// bounded worker pool, and a content-addressed result cache (see
// internal/service).
//
// Usage:
//
//	partd -addr :8080 -workers 4 -cache-mb 128 -store-mb 256 \
//	      -job-log partd-jobs.jsonl -rate 50 -burst 100
//
// Endpoints (API v2):
//
//	PUT    /v1/graphs         upload a graph once; returns its content address
//	GET    /v1/graphs/{hash}  stored-graph metadata
//	POST   /v1/jobs           batch-submit specs against a stored graph
//	GET    /v1/jobs/{id}      poll a job (?wait=1 blocks until it completes)
//	DELETE /v1/jobs/{id}      cancel a queued or running job
//	POST   /v1/partition      legacy inline submit (store+submit shim)
//	GET    /v1/algos          the algorithm registry with declared constraints
//	GET    /v1/stats          worker, job, cache, store, and quota counters
//
// See README.md for the request schemas and an example curl session. The
// daemon shuts down gracefully on SIGINT/SIGTERM: in-flight requests and
// running jobs finish, queued jobs fail with a typed engine_closed error.
// With -job-log, terminal job records persist across restarts (bounded,
// JSONL, assignment vectors stripped).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/ring"
	"repro/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		addrFile  = flag.String("addr-file", "", "write the resolved listen address to this file once serving (for scripts using -addr :0)")
		workers   = flag.Int("workers", 0, "concurrent partition computations (0 = GOMAXPROCS)")
		cacheMB   = flag.Int("cache-mb", 0, "result cache budget in MiB of payload (0 = default 64)")
		storeMB   = flag.Int("store-mb", 0, "graph store budget in MiB of CSR payload (0 = default 256)")
		jobPar    = flag.Int("job-parallelism", 0, "per-computation worker width; never changes results (0 = auto)")
		jobLog    = flag.String("job-log", "", "JSONL file persisting terminal job records across restarts (empty = no persistence)")
		jobLogMax = flag.Int("job-log-max", 0, "job log record bound (0 = default 1024)")
		rate      = flag.Float64("rate", 0, "per-client sustained mutating-requests/sec quota (0 = no admission control)")
		burst     = flag.Float64("burst", 0, "per-client burst allowance on top of -rate (0 = max(rate, 1))")
		tokens    = flag.String("tokens", "", "bearer-token file (one '<token> <client-name>' per line); when set every request except /v1/healthz must authenticate")
		fleet     = flag.String("fleet", "", "fleet members as name=host:port,... (enables peer-fetch of graphs this shard does not hold)")
		self      = flag.String("self", "", "this shard's member name within -fleet (required with -fleet)")
		peerToken = flag.String("peer-token", "", "bearer token presented to fleet peers when fetching graphs")
	)
	flag.Parse()

	// Install signal handling before anything announces readiness: scripts
	// kill the daemon as soon as the addr file appears, and a SIGTERM
	// racing ahead of the handler would hit the default disposition and
	// skip the graceful path.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		jlog     *service.JobLog
		restored []service.JobInfo
	)
	if *jobLog != "" {
		var err error
		jlog, restored, err = service.OpenJobLog(*jobLog, *jobLogMax)
		if err != nil {
			log.Fatalf("partd: %v", err)
		}
		defer jlog.Close()
		if len(restored) > 0 {
			log.Printf("partd: restored %d job records from %s", len(restored), *jobLog)
		}
	}

	engine := service.New(service.Config{
		Workers:        *workers,
		CacheBytes:     int64(*cacheMB) << 20,
		JobParallelism: *jobPar,
		Log:            jlog,
		Restore:        restored,
	})
	store := service.NewGraphStore(int64(*storeMB) << 20)
	opts := []service.HandlerOption{service.WithStore(store)}
	if *rate > 0 {
		opts = append(opts, service.WithQuota(service.NewQuota(*rate, *burst)))
	}
	if *tokens != "" {
		auth, err := service.LoadAuthFile(*tokens)
		if err != nil {
			log.Fatalf("partd: %v", err)
		}
		opts = append(opts, service.WithAuth(auth))
	}
	if *fleet != "" {
		members, err := ring.ParseMembers(*fleet)
		if err != nil {
			log.Fatalf("partd: %v", err)
		}
		if *self == "" {
			log.Fatal("partd: -fleet requires -self (this shard's member name)")
		}
		peers, err := service.NewPeerFetcher(members, *self, *peerToken)
		if err != nil {
			log.Fatalf("partd: %v", err)
		}
		opts = append(opts, service.WithPeers(peers))
	} else if *self != "" {
		log.Fatal("partd: -self is meaningless without -fleet")
	}
	srv := &http.Server{
		Handler:           service.NewHandler(engine, opts...),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("partd: %v", err)
	}
	log.Printf("partd: listening on %s (api %s)", ln.Addr(), service.APIVersion)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatalf("partd: writing -addr-file: %v", err)
		}
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		log.Fatalf("partd: %v", err)
	case <-ctx.Done():
	}
	log.Print("partd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("partd: shutdown: %v", err)
	}
	engine.Close()
	s := engine.Stats()
	st := store.Stats()
	fmt.Printf("partd: served %d jobs (%d computed, %d failed, %d cancelled, %d cache hits, %d coalesced, %d evictions); store %d graphs (%d parses, %d dedups)\n",
		s.JobsSubmitted, s.JobsDone, s.JobsFailed, s.JobsCancelled, s.CacheHits, s.Coalesced, s.CacheEvictions,
		st.Graphs, st.Parses, st.Dedups)
}
