package main

import (
	"encoding/json"
	"os"
	"testing"
)

// TestCommittedFleetBaseline gates the committed fleet artifact: a 3-shard
// run through partroute must have finished with zero errors, every shard
// proxied to, and sane latency numbers. Regenerate with
//
//	go run ./cmd/loadtest -fleet 3 -clients 6 -requests 40 -graphs 6 \
//	    -json bench/BENCH_fleet.json -check
func TestCommittedFleetBaseline(t *testing.T) {
	data, err := os.ReadFile("../../bench/BENCH_fleet.json")
	if err != nil {
		t.Fatalf("reading committed fleet baseline: %v", err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("decoding BENCH_fleet.json: %v", err)
	}
	if rep.Schema != reportSchema {
		t.Fatalf("schema %q, want %q", rep.Schema, reportSchema)
	}
	if rep.Errors != 0 {
		t.Fatalf("committed baseline has %d non-429 errors, want 0", rep.Errors)
	}
	if rep.OK == 0 || rep.OK+rep.Throttled != rep.Total {
		t.Fatalf("request accounting broken: ok=%d throttled=%d total=%d",
			rep.OK, rep.Throttled, rep.Total)
	}
	if len(rep.Shards) != 3 {
		t.Fatalf("baseline has %d shards, want 3", len(rep.Shards))
	}
	var proxied uint64
	for name, sh := range rep.Shards {
		if !sh.Up {
			t.Errorf("shard %s recorded down in baseline", name)
		}
		if sh.Proxied == 0 {
			t.Errorf("shard %s served zero proxied requests", name)
		}
		proxied += sh.Proxied
	}
	if proxied == 0 {
		t.Fatal("no shard served any request")
	}
	if rep.ThroughputHz == 0 || rep.LatencyP99NS == 0 {
		t.Fatalf("missing perf numbers: throughput=%d p99=%d",
			rep.ThroughputHz, rep.LatencyP99NS)
	}
	if rep.LatencyP50NS > rep.LatencyP99NS || rep.LatencyP99NS > rep.LatencyMaxNS {
		t.Fatalf("latency quantiles out of order: p50=%d p99=%d max=%d",
			rep.LatencyP50NS, rep.LatencyP99NS, rep.LatencyMaxNS)
	}
}
