// Command loadtest drives a partd daemon with a Zipf-distributed multi-client
// workload and reports throughput, latency percentiles, and cache behavior.
//
// N concurrent clients each issue a deterministic sequence of single-spec
// batch submissions, sampling which stored graph to partition from a Zipf
// popularity distribution — the skewed access pattern a shared partitioning
// service actually sees, and the regime a content-addressed result cache is
// supposed to win in. Because every client's sequence is derived from -seed,
// the run is reproducible, and the exact cache-hit floor is computable from
// the sampled sequence itself: each distinct (graph, spec) key can miss at
// most once, so hits >= successes - distinct_keys. The -check flag turns that
// invariant, plus "zero non-429 errors", into an exit code for CI.
//
// With -addr the load goes to a running daemon or partroute fleet router
// (the wire surface is identical); without it the tool boots an in-process
// daemon on a loopback port, so the gate needs no orchestration. With
// -fleet N it boots N in-process shards behind an in-process router instead,
// and the report gains the per-shard request distribution so routing skew is
// visible; -check then additionally requires every live shard to have served
// traffic and the aggregate stats to equal the per-shard sums.
//
// Usage:
//
//	loadtest -clients 4 -requests 50 -graphs 5 -json bench/BENCH_loadtest.json -check
//	loadtest -fleet 3 -clients 6 -requests 40 -json bench/BENCH_fleet.json -check
//	loadtest -addr 127.0.0.1:9090 -clients 16 -requests 200
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/gen"
	"repro/internal/gio"
	"repro/internal/ring"
	"repro/internal/service"
	"repro/pkg/client"
)

type config struct {
	addr     string
	fleet    int
	clients  int
	requests int
	graphs   int
	nodes    int
	parts    int
	algo     string
	seeds    int
	zipfS    float64
	seed     int64
	workers  int
	rate     float64
	burst    float64
	jsonPath string
	check    bool
}

// reportSchema names the report wire format; fleet fields are additive.
const reportSchema = "repro-loadtest/v1"

// report is the JSON the run emits (and bench/BENCH_loadtest.json commits).
type report struct {
	Schema    string  `json:"schema"`
	GoVersion string  `json:"go_version"`
	Clients   int     `json:"clients"`
	Requests  int     `json:"requests_per_client"`
	Graphs    int     `json:"graphs"`
	Nodes     int     `json:"nodes"`
	Parts     int     `json:"parts"`
	Algo      string  `json:"algo"`
	Seeds     int     `json:"distinct_seeds"`
	ZipfS     float64 `json:"zipf_s"`
	Seed      int64   `json:"seed"`

	Total        int   `json:"total_requests"`
	OK           int   `json:"ok"`
	Throttled    int   `json:"throttled"` // structured 429s (quota or queue backpressure)
	Errors       int   `json:"errors"`    // everything else — must be zero
	ElapsedNS    int64 `json:"elapsed_ns"`
	ThroughputHz int64 `json:"throughput_milli_rps"` // successful requests per second, x1000

	LatencyP50NS  int64 `json:"latency_p50_ns"`
	LatencyP90NS  int64 `json:"latency_p90_ns"`
	LatencyP99NS  int64 `json:"latency_p99_ns"`
	LatencyMaxNS  int64 `json:"latency_max_ns"`
	LatencyMeanNS int64 `json:"latency_mean_ns"`

	DistinctKeys   int     `json:"distinct_keys"` // among successful requests
	CacheHits      uint64  `json:"cache_hits"`    // completed-result hits + coalesced joins
	CacheMisses    uint64  `json:"cache_misses"`
	HitRate        float64 `json:"hit_rate"`
	PredictedFloor float64 `json:"predicted_hit_floor"` // (ok - distinct_keys) / ok
	StoreParses    uint64  `json:"store_parses"`
	StoreHashes    uint64  `json:"store_hashes"`
	StoreDedups    uint64  `json:"store_dedups"`

	// Fleet mode only: the per-shard request distribution (keyed by shard
	// name) and the router's own routing counters, so placement skew and
	// routing cost are visible in the committed artifact.
	Shards         map[string]shardReport `json:"shards,omitempty"`
	RouteParses    uint64                 `json:"route_parses,omitempty"`
	RouteCacheHits uint64                 `json:"route_cache_hits,omitempty"`
}

// shardReport is one shard's slice of a fleet run.
type shardReport struct {
	Up            bool   `json:"up"`
	Proxied       uint64 `json:"proxied"` // data-plane requests the router sent it
	JobsSubmitted uint64 `json:"jobs_submitted"`
	StoreGraphs   int    `json:"store_graphs"`
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "", "daemon or fleet-router address (empty = boot in-process)")
	flag.IntVar(&cfg.fleet, "fleet", 0, "boot an in-process fleet of N shards behind a router instead of one daemon (ignored with -addr)")
	flag.IntVar(&cfg.clients, "clients", 4, "concurrent clients")
	flag.IntVar(&cfg.requests, "requests", 50, "requests per client")
	flag.IntVar(&cfg.graphs, "graphs", 5, "distinct stored graphs")
	flag.IntVar(&cfg.nodes, "nodes", 1500, "nodes in the smallest graph (each next graph is ~25% larger)")
	flag.IntVar(&cfg.parts, "parts", 8, "parts per job")
	flag.StringVar(&cfg.algo, "algo", "multilevel-kl", "algorithm to request")
	flag.IntVar(&cfg.seeds, "seeds", 3, "distinct job seeds per graph (widens the cache key space)")
	flag.Float64Var(&cfg.zipfS, "zipf-s", 1.3, "Zipf exponent for graph popularity (> 1)")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload seed; the whole run is deterministic in it")
	flag.IntVar(&cfg.workers, "workers", 0, "in-process daemon worker pool (0 = GOMAXPROCS)")
	flag.Float64Var(&cfg.rate, "rate", 0, "in-process daemon per-client quota rate (0 = off)")
	flag.Float64Var(&cfg.burst, "burst", 0, "in-process daemon quota burst")
	flag.StringVar(&cfg.jsonPath, "json", "", "write the JSON report here")
	flag.BoolVar(&cfg.check, "check", false, "exit nonzero unless errors == 0 and hit_rate >= predicted floor")
	flag.Parse()

	rep, err := run(cfg)
	if err != nil {
		log.Fatalf("loadtest: %v", err)
	}
	fmt.Printf("loadtest: %d/%d ok (%d throttled, %d errors) in %v\n",
		rep.OK, rep.Total, rep.Throttled, rep.Errors, time.Duration(rep.ElapsedNS))
	fmt.Printf("loadtest: latency p50 %v  p90 %v  p99 %v  max %v\n",
		time.Duration(rep.LatencyP50NS), time.Duration(rep.LatencyP90NS),
		time.Duration(rep.LatencyP99NS), time.Duration(rep.LatencyMaxNS))
	fmt.Printf("loadtest: cache hit rate %.3f (floor %.3f from %d distinct keys)\n",
		rep.HitRate, rep.PredictedFloor, rep.DistinctKeys)
	if len(rep.Shards) > 0 {
		names := make([]string, 0, len(rep.Shards))
		for name := range rep.Shards {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			s := rep.Shards[name]
			fmt.Printf("loadtest: shard %s: up=%v proxied=%d jobs=%d graphs=%d\n",
				name, s.Up, s.Proxied, s.JobsSubmitted, s.StoreGraphs)
		}
		fmt.Printf("loadtest: router parses %d, memo hits %d\n", rep.RouteParses, rep.RouteCacheHits)
	}
	if cfg.jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("loadtest: %v", err)
		}
		if err := os.WriteFile(cfg.jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("loadtest: %v", err)
		}
	}
	if cfg.check {
		if rep.Errors > 0 {
			log.Fatalf("loadtest: CHECK FAILED: %d non-429 errors", rep.Errors)
		}
		if rep.OK == 0 {
			log.Fatal("loadtest: CHECK FAILED: no request succeeded")
		}
		if rep.HitRate < rep.PredictedFloor {
			log.Fatalf("loadtest: CHECK FAILED: hit rate %.3f below predicted floor %.3f",
				rep.HitRate, rep.PredictedFloor)
		}
		for name, s := range rep.Shards {
			if s.Up && s.Proxied == 0 {
				log.Fatalf("loadtest: CHECK FAILED: live shard %s served no requests (routing skew or misconfiguration)", name)
			}
		}
		if len(rep.Shards) > 0 {
			var shardJobs uint64
			for _, s := range rep.Shards {
				shardJobs += s.JobsSubmitted
			}
			var aggJobs uint64 = rep.CacheHits + rep.CacheMisses
			if shardJobs != aggJobs {
				log.Fatalf("loadtest: CHECK FAILED: aggregate jobs %d != per-shard sum %d (stats aggregation broken)", aggJobs, shardJobs)
			}
		}
		fmt.Println("loadtest: CHECK PASSED")
	}
}

func run(cfg config) (*report, error) {
	base := cfg.addr
	if base == "" {
		boot := bootDaemon
		if cfg.fleet > 0 {
			boot = bootFleet
		}
		addr, shutdown, err := boot(cfg)
		if err != nil {
			return nil, err
		}
		defer shutdown()
		base = addr
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	// Build and upload the graph corpus. Every graph is uploaded by client 0;
	// the first request of every other client re-uploads one (exercising the
	// dedup path a real fleet hits constantly).
	payloads := make([]string, cfg.graphs)
	hashes := make([]string, cfg.graphs)
	for i := range payloads {
		n := cfg.nodes + i*cfg.nodes/4
		var sb strings.Builder
		if err := gio.WriteGraph(gio.FormatMETIS, &sb, gen.Mesh(n, cfg.seed+int64(i))); err != nil {
			return nil, err
		}
		payloads[i] = sb.String()
	}
	ctx := context.Background()
	uploader := client.New(base, client.WithName("load-uploader"))
	for i, p := range payloads {
		resp, err := uploader.UploadGraph(ctx, "metis", p)
		if err != nil {
			return nil, fmt.Errorf("uploading graph %d: %w", i, err)
		}
		hashes[i] = resp.Hash
	}

	// Precompute every client's deterministic request sequence: Zipf over
	// graphs (rank 0 most popular), uniform over job seeds.
	type reqKey struct{ graph, seed int }
	sequences := make([][]reqKey, cfg.clients)
	for c := range sequences {
		rng := rand.New(rand.NewSource(cfg.seed + int64(c)*7919))
		zipf := rand.NewZipf(rng, cfg.zipfS, 1, uint64(cfg.graphs-1))
		seq := make([]reqKey, cfg.requests)
		for r := range seq {
			seq[r] = reqKey{graph: int(zipf.Uint64()), seed: rng.Intn(cfg.seeds)}
		}
		sequences[c] = seq
	}

	var (
		mu                    sync.Mutex
		latencies             []time.Duration
		okKeys                = map[reqKey]struct{}{}
		ok, throttled, failed int
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := client.New(base, client.WithName(fmt.Sprintf("load-%d", c)))
			if c > 0 {
				// Re-upload this client's first graph: must dedup, not fail.
				if _, err := cl.UploadGraph(ctx, "metis", payloads[sequences[c][0].graph]); err != nil {
					var apiErr *client.APIError
					if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
						mu.Lock()
						failed++
						mu.Unlock()
					}
				}
			}
			for _, k := range sequences[c] {
				spec := service.JobSpec{Algo: cfg.algo, Parts: cfg.parts, Seed: int64(k.seed)}
				t0 := time.Now()
				resp, err := cl.SubmitBatchWait(ctx, hashes[k.graph], []service.JobSpec{spec})
				lat := time.Since(t0)
				mu.Lock()
				switch {
				case err == nil && len(resp.Jobs) == 1 && resp.Jobs[0].State == service.StateDone:
					ok++
					okKeys[k] = struct{}{}
					latencies = append(latencies, lat)
				case isThrottle(err):
					throttled++
				default:
					failed++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	stats, err := client.New(base, client.WithName("load-uploader")).Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("reading final stats: %w", err)
	}

	rep := &report{
		Schema:    reportSchema,
		GoVersion: runtime.Version(),
		Clients:   cfg.clients, Requests: cfg.requests, Graphs: cfg.graphs,
		Nodes: cfg.nodes, Parts: cfg.parts, Algo: cfg.algo, Seeds: cfg.seeds,
		ZipfS: cfg.zipfS, Seed: cfg.seed,
		Total: cfg.clients * cfg.requests, OK: ok, Throttled: throttled, Errors: failed,
		ElapsedNS:    elapsed.Nanoseconds(),
		DistinctKeys: len(okKeys),
		CacheHits:    stats.CacheHits + stats.Coalesced,
		CacheMisses:  stats.CacheMisses,
		StoreParses:  stats.Store.Parses,
		StoreHashes:  stats.Store.Hashes,
		StoreDedups:  stats.Store.Dedups,
	}
	if elapsed > 0 {
		rep.ThroughputHz = int64(float64(ok) / elapsed.Seconds() * 1000)
	}
	if ok > 0 {
		// The floor holds exactly because each distinct key can miss at most
		// once (the result cache outlives the run and nothing evicts at these
		// payload sizes): hits >= ok - distinct.
		rep.PredictedFloor = float64(ok-len(okKeys)) / float64(ok)
	}
	if submitted := stats.CacheHits + stats.Coalesced + stats.CacheMisses; submitted > 0 {
		rep.HitRate = float64(rep.CacheHits) / float64(submitted)
	}
	// If the target is a fleet router, its stats carry a per-shard breakdown;
	// fold it into the report (absent against a single daemon).
	if fs, err := fetchFleetBlock(base); err != nil {
		return nil, err
	} else if fs != nil {
		rep.Shards = make(map[string]shardReport, len(fs.Fleet.Shards))
		for _, s := range fs.Fleet.Shards {
			sr := shardReport{Up: s.Up, Proxied: s.Proxied}
			if st, ok := fs.Fleet.ShardStats[s.Name]; ok {
				sr.JobsSubmitted = st.JobsSubmitted
				sr.StoreGraphs = st.Store.Graphs
			}
			rep.Shards[s.Name] = sr
		}
		rep.RouteParses = fs.Fleet.Router.RouteParses
		rep.RouteCacheHits = fs.Fleet.Router.RouteCacheHits
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if len(latencies) > 0 {
		var sum time.Duration
		for _, l := range latencies {
			sum += l
		}
		pct := func(p float64) int64 {
			i := int(p * float64(len(latencies)-1))
			return latencies[i].Nanoseconds()
		}
		rep.LatencyP50NS = pct(0.50)
		rep.LatencyP90NS = pct(0.90)
		rep.LatencyP99NS = pct(0.99)
		rep.LatencyMaxNS = latencies[len(latencies)-1].Nanoseconds()
		rep.LatencyMeanNS = (sum / time.Duration(len(latencies))).Nanoseconds()
	}
	return rep, nil
}

// isThrottle reports whether err is a structured 429 — quota or queue
// backpressure, the one refusal the gate tolerates.
func isThrottle(err error) bool {
	var apiErr *client.APIError
	return errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests
}

// fetchFleetBlock reads the target's /v1/stats and returns the fleet block
// when the target is a router (nil against a single daemon, whose stats
// carry no "fleet" key).
func fetchFleetBlock(base string) (*fleet.StatsResponse, error) {
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return nil, fmt.Errorf("reading fleet stats: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet stats: status %d", resp.StatusCode)
	}
	var fs fleet.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		return nil, fmt.Errorf("decoding fleet stats: %w", err)
	}
	if len(fs.Fleet.Shards) == 0 {
		return nil, nil
	}
	return &fs, nil
}

// bootFleet starts cfg.fleet in-process shards and a router over them on
// loopback ports, returning the router's address and a shutdown func.
func bootFleet(cfg config) (string, func(), error) {
	var (
		members   []ring.Member
		shutdowns []func()
	)
	shutdownAll := func() {
		for _, f := range shutdowns {
			f()
		}
	}
	for i := 1; i <= cfg.fleet; i++ {
		engine := service.New(service.Config{Workers: cfg.workers})
		opts := []service.HandlerOption{service.WithStore(service.NewGraphStore(0))}
		if cfg.rate > 0 {
			opts = append(opts, service.WithQuota(service.NewQuota(cfg.rate, cfg.burst)))
		}
		srv := &http.Server{Handler: service.NewHandler(engine, opts...)}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			shutdownAll()
			return "", nil, err
		}
		go srv.Serve(ln)
		shutdowns = append(shutdowns, func() { srv.Close(); engine.Close() })
		members = append(members, ring.Member{Name: fmt.Sprintf("s%d", i), Addr: ln.Addr().String()})
	}
	rt, err := fleet.New(fleet.Config{Members: members, HealthInterval: 500 * time.Millisecond})
	if err != nil {
		shutdownAll()
		return "", nil, err
	}
	shutdowns = append(shutdowns, rt.Close)
	srv := &http.Server{Handler: rt.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		shutdownAll()
		return "", nil, err
	}
	go srv.Serve(ln)
	shutdowns = append(shutdowns, func() { srv.Close() })
	return ln.Addr().String(), shutdownAll, nil
}

// bootDaemon starts an in-process daemon on a loopback port and returns its
// address and a shutdown func.
func bootDaemon(cfg config) (string, func(), error) {
	engine := service.New(service.Config{Workers: cfg.workers})
	store := service.NewGraphStore(0)
	var quota *service.Quota
	if cfg.rate > 0 {
		quota = service.NewQuota(cfg.rate, cfg.burst)
	}
	srv := &http.Server{Handler: service.NewHandler(engine, service.WithStore(store), service.WithQuota(quota))}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go srv.Serve(ln)
	shutdown := func() {
		srv.Close()
		engine.Close()
	}
	return ln.Addr().String(), shutdown, nil
}
