// Command loadtest drives a partd daemon with a Zipf-distributed multi-client
// workload and reports throughput, latency percentiles, and cache behavior.
//
// N concurrent clients each issue a deterministic sequence of single-spec
// batch submissions, sampling which stored graph to partition from a Zipf
// popularity distribution — the skewed access pattern a shared partitioning
// service actually sees, and the regime a content-addressed result cache is
// supposed to win in. Because every client's sequence is derived from -seed,
// the run is reproducible, and the exact cache-hit floor is computable from
// the sampled sequence itself: each distinct (graph, spec) key can miss at
// most once, so hits >= successes - distinct_keys. The -check flag turns that
// invariant, plus "zero non-429 errors", into an exit code for CI.
//
// With -addr the load goes to a running daemon; without it the tool boots an
// in-process daemon on a loopback port, so the gate needs no orchestration.
//
// Usage:
//
//	loadtest -clients 4 -requests 50 -graphs 5 -json bench/BENCH_loadtest.json -check
//	loadtest -addr 127.0.0.1:8080 -clients 16 -requests 200
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/gen"
	"repro/internal/gio"
	"repro/internal/service"
	"repro/pkg/client"
)

type config struct {
	addr     string
	clients  int
	requests int
	graphs   int
	nodes    int
	parts    int
	algo     string
	seeds    int
	zipfS    float64
	seed     int64
	workers  int
	rate     float64
	burst    float64
	jsonPath string
	check    bool
}

// report is the JSON the run emits (and bench/BENCH_loadtest.json commits).
type report struct {
	Schema    string  `json:"schema"`
	GoVersion string  `json:"go_version"`
	Clients   int     `json:"clients"`
	Requests  int     `json:"requests_per_client"`
	Graphs    int     `json:"graphs"`
	Nodes     int     `json:"nodes"`
	Parts     int     `json:"parts"`
	Algo      string  `json:"algo"`
	Seeds     int     `json:"distinct_seeds"`
	ZipfS     float64 `json:"zipf_s"`
	Seed      int64   `json:"seed"`

	Total        int   `json:"total_requests"`
	OK           int   `json:"ok"`
	Throttled    int   `json:"throttled"` // structured 429s (quota or queue backpressure)
	Errors       int   `json:"errors"`    // everything else — must be zero
	ElapsedNS    int64 `json:"elapsed_ns"`
	ThroughputHz int64 `json:"throughput_milli_rps"` // successful requests per second, x1000

	LatencyP50NS  int64 `json:"latency_p50_ns"`
	LatencyP90NS  int64 `json:"latency_p90_ns"`
	LatencyP99NS  int64 `json:"latency_p99_ns"`
	LatencyMaxNS  int64 `json:"latency_max_ns"`
	LatencyMeanNS int64 `json:"latency_mean_ns"`

	DistinctKeys   int     `json:"distinct_keys"` // among successful requests
	CacheHits      uint64  `json:"cache_hits"`    // completed-result hits + coalesced joins
	CacheMisses    uint64  `json:"cache_misses"`
	HitRate        float64 `json:"hit_rate"`
	PredictedFloor float64 `json:"predicted_hit_floor"` // (ok - distinct_keys) / ok
	StoreParses    uint64  `json:"store_parses"`
	StoreHashes    uint64  `json:"store_hashes"`
	StoreDedups    uint64  `json:"store_dedups"`
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "", "daemon address (empty = boot an in-process daemon)")
	flag.IntVar(&cfg.clients, "clients", 4, "concurrent clients")
	flag.IntVar(&cfg.requests, "requests", 50, "requests per client")
	flag.IntVar(&cfg.graphs, "graphs", 5, "distinct stored graphs")
	flag.IntVar(&cfg.nodes, "nodes", 1500, "nodes in the smallest graph (each next graph is ~25% larger)")
	flag.IntVar(&cfg.parts, "parts", 8, "parts per job")
	flag.StringVar(&cfg.algo, "algo", "multilevel-kl", "algorithm to request")
	flag.IntVar(&cfg.seeds, "seeds", 3, "distinct job seeds per graph (widens the cache key space)")
	flag.Float64Var(&cfg.zipfS, "zipf-s", 1.3, "Zipf exponent for graph popularity (> 1)")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload seed; the whole run is deterministic in it")
	flag.IntVar(&cfg.workers, "workers", 0, "in-process daemon worker pool (0 = GOMAXPROCS)")
	flag.Float64Var(&cfg.rate, "rate", 0, "in-process daemon per-client quota rate (0 = off)")
	flag.Float64Var(&cfg.burst, "burst", 0, "in-process daemon quota burst")
	flag.StringVar(&cfg.jsonPath, "json", "", "write the JSON report here")
	flag.BoolVar(&cfg.check, "check", false, "exit nonzero unless errors == 0 and hit_rate >= predicted floor")
	flag.Parse()

	rep, err := run(cfg)
	if err != nil {
		log.Fatalf("loadtest: %v", err)
	}
	fmt.Printf("loadtest: %d/%d ok (%d throttled, %d errors) in %v\n",
		rep.OK, rep.Total, rep.Throttled, rep.Errors, time.Duration(rep.ElapsedNS))
	fmt.Printf("loadtest: latency p50 %v  p90 %v  p99 %v  max %v\n",
		time.Duration(rep.LatencyP50NS), time.Duration(rep.LatencyP90NS),
		time.Duration(rep.LatencyP99NS), time.Duration(rep.LatencyMaxNS))
	fmt.Printf("loadtest: cache hit rate %.3f (floor %.3f from %d distinct keys)\n",
		rep.HitRate, rep.PredictedFloor, rep.DistinctKeys)
	if cfg.jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("loadtest: %v", err)
		}
		if err := os.WriteFile(cfg.jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("loadtest: %v", err)
		}
	}
	if cfg.check {
		if rep.Errors > 0 {
			log.Fatalf("loadtest: CHECK FAILED: %d non-429 errors", rep.Errors)
		}
		if rep.OK == 0 {
			log.Fatal("loadtest: CHECK FAILED: no request succeeded")
		}
		if rep.HitRate < rep.PredictedFloor {
			log.Fatalf("loadtest: CHECK FAILED: hit rate %.3f below predicted floor %.3f",
				rep.HitRate, rep.PredictedFloor)
		}
		fmt.Println("loadtest: CHECK PASSED")
	}
}

func run(cfg config) (*report, error) {
	base := cfg.addr
	if base == "" {
		addr, shutdown, err := bootDaemon(cfg)
		if err != nil {
			return nil, err
		}
		defer shutdown()
		base = addr
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	// Build and upload the graph corpus. Every graph is uploaded by client 0;
	// the first request of every other client re-uploads one (exercising the
	// dedup path a real fleet hits constantly).
	payloads := make([]string, cfg.graphs)
	hashes := make([]string, cfg.graphs)
	for i := range payloads {
		n := cfg.nodes + i*cfg.nodes/4
		var sb strings.Builder
		if err := gio.WriteGraph(gio.FormatMETIS, &sb, gen.Mesh(n, cfg.seed+int64(i))); err != nil {
			return nil, err
		}
		payloads[i] = sb.String()
	}
	ctx := context.Background()
	uploader := client.New(base, client.WithName("load-uploader"))
	for i, p := range payloads {
		resp, err := uploader.UploadGraph(ctx, "metis", p)
		if err != nil {
			return nil, fmt.Errorf("uploading graph %d: %w", i, err)
		}
		hashes[i] = resp.Hash
	}

	// Precompute every client's deterministic request sequence: Zipf over
	// graphs (rank 0 most popular), uniform over job seeds.
	type reqKey struct{ graph, seed int }
	sequences := make([][]reqKey, cfg.clients)
	for c := range sequences {
		rng := rand.New(rand.NewSource(cfg.seed + int64(c)*7919))
		zipf := rand.NewZipf(rng, cfg.zipfS, 1, uint64(cfg.graphs-1))
		seq := make([]reqKey, cfg.requests)
		for r := range seq {
			seq[r] = reqKey{graph: int(zipf.Uint64()), seed: rng.Intn(cfg.seeds)}
		}
		sequences[c] = seq
	}

	var (
		mu                    sync.Mutex
		latencies             []time.Duration
		okKeys                = map[reqKey]struct{}{}
		ok, throttled, failed int
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := client.New(base, client.WithName(fmt.Sprintf("load-%d", c)))
			if c > 0 {
				// Re-upload this client's first graph: must dedup, not fail.
				if _, err := cl.UploadGraph(ctx, "metis", payloads[sequences[c][0].graph]); err != nil {
					var apiErr *client.APIError
					if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
						mu.Lock()
						failed++
						mu.Unlock()
					}
				}
			}
			for _, k := range sequences[c] {
				spec := service.JobSpec{Algo: cfg.algo, Parts: cfg.parts, Seed: int64(k.seed)}
				t0 := time.Now()
				resp, err := cl.SubmitBatchWait(ctx, hashes[k.graph], []service.JobSpec{spec})
				lat := time.Since(t0)
				mu.Lock()
				switch {
				case err == nil && len(resp.Jobs) == 1 && resp.Jobs[0].State == service.StateDone:
					ok++
					okKeys[k] = struct{}{}
					latencies = append(latencies, lat)
				case isThrottle(err):
					throttled++
				default:
					failed++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	stats, err := client.New(base, client.WithName("load-uploader")).Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("reading final stats: %w", err)
	}

	rep := &report{
		Schema:    "repro-loadtest/v1",
		GoVersion: runtime.Version(),
		Clients:   cfg.clients, Requests: cfg.requests, Graphs: cfg.graphs,
		Nodes: cfg.nodes, Parts: cfg.parts, Algo: cfg.algo, Seeds: cfg.seeds,
		ZipfS: cfg.zipfS, Seed: cfg.seed,
		Total: cfg.clients * cfg.requests, OK: ok, Throttled: throttled, Errors: failed,
		ElapsedNS:    elapsed.Nanoseconds(),
		DistinctKeys: len(okKeys),
		CacheHits:    stats.CacheHits + stats.Coalesced,
		CacheMisses:  stats.CacheMisses,
		StoreParses:  stats.Store.Parses,
		StoreHashes:  stats.Store.Hashes,
		StoreDedups:  stats.Store.Dedups,
	}
	if elapsed > 0 {
		rep.ThroughputHz = int64(float64(ok) / elapsed.Seconds() * 1000)
	}
	if ok > 0 {
		// The floor holds exactly because each distinct key can miss at most
		// once (the result cache outlives the run and nothing evicts at these
		// payload sizes): hits >= ok - distinct.
		rep.PredictedFloor = float64(ok-len(okKeys)) / float64(ok)
	}
	if submitted := stats.CacheHits + stats.Coalesced + stats.CacheMisses; submitted > 0 {
		rep.HitRate = float64(rep.CacheHits) / float64(submitted)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if len(latencies) > 0 {
		var sum time.Duration
		for _, l := range latencies {
			sum += l
		}
		pct := func(p float64) int64 {
			i := int(p * float64(len(latencies)-1))
			return latencies[i].Nanoseconds()
		}
		rep.LatencyP50NS = pct(0.50)
		rep.LatencyP90NS = pct(0.90)
		rep.LatencyP99NS = pct(0.99)
		rep.LatencyMaxNS = latencies[len(latencies)-1].Nanoseconds()
		rep.LatencyMeanNS = (sum / time.Duration(len(latencies))).Nanoseconds()
	}
	return rep, nil
}

// isThrottle reports whether err is a structured 429 — quota or queue
// backpressure, the one refusal the gate tolerates.
func isThrottle(err error) bool {
	var apiErr *client.APIError
	return errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests
}

// bootDaemon starts an in-process daemon on a loopback port and returns its
// address and a shutdown func.
func bootDaemon(cfg config) (string, func(), error) {
	engine := service.New(service.Config{Workers: cfg.workers})
	store := service.NewGraphStore(0)
	var quota *service.Quota
	if cfg.rate > 0 {
		quota = service.NewQuota(cfg.rate, cfg.burst)
	}
	srv := &http.Server{Handler: service.NewHandler(engine, service.WithStore(store), service.WithQuota(quota))}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go srv.Serve(ln)
	shutdown := func() {
		srv.Close()
		engine.Close()
	}
	return ln.Addr().String(), shutdown, nil
}
