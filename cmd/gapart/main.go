// Command gapart partitions a graph with any algorithm in the unified
// registry (internal/algo) and reports the quality metrics of the result.
//
// Usage:
//
//	gapart -in mesh.g -algo dknux -parts 8 [-objective maxcut] [-gens 200]
//	gapart -in web.metis -informat metis -algo multilevel-kl -parts 8
//	gapart -mesh 10000 -algo multilevel-kl -parts 8
//	gapart -list
//
// The input graph is either read from a file (-in; METIS/Chaco, edge-list,
// or the native text format, detected from the extension or forced with
// -informat) or generated from the deterministic benchmark suite (-mesh N).
// Algorithms are selected by registry name; -list prints every name with its
// description and constraints. The partition is written as a METIS-style
// partition vector (one part id per line) with -out and rendered as SVG
// with -svg.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/algo"
	"repro/internal/gen"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/viz"
)

func main() {
	var (
		inPath    = flag.String("in", "", "input graph file (format from extension, or -informat)")
		graphPath = flag.String("graph", "", "alias for -in (kept for compatibility)")
		inFormat  = flag.String("informat", "auto", "input graph format: auto | metis | edgelist | text")
		meshN     = flag.Int("mesh", 0, "generate a benchmark mesh with this many nodes instead of reading a file")
		algoName  = flag.String("algo", "dknux", "algorithm registry name (see -list)")
		list      = flag.Bool("list", false, "print the registered algorithms and exit")
		parts     = flag.Int("parts", 4, "number of parts")
		objective = flag.String("objective", "cut", "objective: cut (total edge cut) | maxcut (worst-part cut) | commvol (communication volume); legacy total/worst accepted")
		gens      = flag.Int("gens", 0, "GA generations (0 = default)")
		pop       = flag.Int("pop", 0, "GA total population (0 = default)")
		islands   = flag.Int("islands", 0, "GA subpopulations (0 = default, 1 = single population)")
		workers   = flag.Int("evalworkers", 0, "parallel fitness-evaluation goroutines per engine (0 = auto; results are identical for any value)")
		mlWorkers = flag.Int("workers", 0, "parallel V-cycle goroutines: coarsening, contraction, projection, and colored refinement (0 = auto; results are identical for any value)")
		passes    = flag.Int("passes", 0, "refinement passes for kl/fm/multilevel (0 = algorithm default)")
		coarsest  = flag.Int("coarsest", 0, "multilevel: stop coarsening at this many nodes (0 = default)")
		lanczos   = flag.Int("lanczos", 0, "rsb: Lanczos iteration budget per Fiedler solve (0 = default 40; cost grows with the square)")
		seed      = flag.Int64("seed", 1994, "random seed")
		outPath   = flag.String("out", "", "write the partition vector (one part id per line) to this file")
		svgPath   = flag.String("svg", "", "render the partitioned graph as SVG to this file")
	)
	flag.Parse()

	if *list {
		listAlgorithms()
		return
	}

	path := *inPath
	if path == "" {
		path = *graphPath
	}
	g, err := loadGraph(path, *inFormat, *meshN)
	if err != nil {
		fatal(err)
	}
	obj, err := partition.ParseObjective(*objective)
	if err != nil {
		fatal(err)
	}

	p, err := algo.Run(g, *algoName, algo.Options{
		Parts:        *parts,
		Objective:    obj,
		Seed:         *seed,
		Generations:  *gens,
		PopSize:      *pop,
		Islands:      *islands,
		EvalWorkers:  *workers,
		RefinePasses: *passes,
		CoarsestSize: *coarsest,
		Workers:      *mlWorkers,
		LanczosIter:  *lanczos,
	})
	if err != nil {
		fatal(err)
	}
	report(g, p, obj)

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := gio.WritePartition(f, p); err != nil {
			fatal(err)
		}
	}
	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := viz.WriteSVG(f, g, p, viz.Options{ShowCutEdges: true}); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *svgPath)
	}
}

func listAlgorithms() {
	for _, name := range algo.Names() {
		p, err := algo.Get(name)
		if err != nil {
			fatal(err)
		}
		info := p.Info()
		var notes []string
		if info.NeedsCoords {
			notes = append(notes, "needs coordinates")
		}
		if info.PowerOfTwoParts {
			notes = append(notes, "parts must be 2^d")
		}
		if info.Stochastic {
			notes = append(notes, "seeded")
		}
		if len(info.Objectives) > 0 {
			var objs []string
			for _, o := range info.Objectives {
				objs = append(objs, o.FlagName())
			}
			notes = append(notes, "objectives: cut, "+strings.Join(objs, ", "))
		}
		suffix := ""
		if len(notes) > 0 {
			suffix = " [" + strings.Join(notes, ", ") + "]"
		}
		fmt.Printf("%-15s %s%s\n", name, info.Description, suffix)
	}
}

func loadGraph(path, format string, meshN int) (*graph.Graph, error) {
	switch {
	case path != "" && meshN != 0:
		return nil, fmt.Errorf("use either -in or -mesh, not both")
	case path != "":
		f, err := gio.FormatByName(format)
		if err != nil {
			return nil, err
		}
		return gio.ReadGraphFile(path, f)
	case meshN >= 3:
		return gen.Mesh(meshN, gen.SuiteSeed+int64(meshN)), nil
	default:
		return nil, fmt.Errorf("need -in FILE or -mesh N (N >= 3)")
	}
}

func report(g *graph.Graph, p *partition.Partition, obj partition.Objective) {
	fmt.Printf("nodes: %d  edges: %d  parts: %d\n", g.NumNodes(), g.NumEdges(), p.Parts)
	fmt.Printf("cut size (sum_q C(q)/2): %.0f\n", p.ObjectiveValue(g, partition.TotalCut))
	fmt.Printf("worst cut (max_q C(q)):  %.0f\n", p.ObjectiveValue(g, partition.WorstCut))
	fmt.Printf("comm volume (sum_q V(q)): %.0f\n", p.ObjectiveValue(g, partition.CommVolume))
	fmt.Printf("imbalance^2:             %.2f\n", p.ImbalanceSq(g))
	fmt.Printf("part sizes:              %v\n", p.PartSizes())
	fmt.Printf("fitness (%s): %.2f\n", obj, p.Fitness(g, obj))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gapart:", err)
	os.Exit(1)
}
