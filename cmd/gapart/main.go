// Command gapart partitions a graph with any of the algorithms in this
// repository and reports the quality metrics of the result.
//
// Usage:
//
//	gapart -graph mesh.g -algo dknux -parts 8 [-objective worst] [-gens 200]
//	gapart -mesh 167 -algo rsb -parts 4
//
// The input graph is either read from a file (-graph; the native text
// format, or METIS/Chaco for .metis/.graph suffixes) or generated from the
// deterministic benchmark suite (-mesh N). Algorithms: dknux, knux, ux,
// 2pt, rsb, ibp, rcb, rgb, kl, fm, anneal, multilevel, grow, scattered,
// strip. The partition is written as "node part" lines with -out and
// rendered as SVG with -svg.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/anneal"
	"repro/internal/dpga"
	"repro/internal/fm"
	"repro/internal/ga"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/greedy"
	"repro/internal/ibp"
	"repro/internal/kl"
	"repro/internal/multilevel"
	"repro/internal/partition"
	"repro/internal/rcb"
	"repro/internal/spectral"
	"repro/internal/viz"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file in the text format (see package graph)")
		meshN     = flag.Int("mesh", 0, "generate a benchmark mesh with this many nodes instead of reading a file")
		algo      = flag.String("algo", "dknux", "algorithm: dknux|knux|ux|2pt|rsb|ibp|rcb|rgb|kl|fm|anneal|multilevel|grow|scattered|strip")
		parts     = flag.Int("parts", 4, "number of parts")
		objective = flag.String("objective", "total", "fitness function: total (Fitness 1) or worst (Fitness 2)")
		gens      = flag.Int("gens", 200, "GA generations")
		pop       = flag.Int("pop", 320, "GA total population")
		islands   = flag.Int("islands", 16, "GA subpopulations (1 = single population)")
		workers   = flag.Int("evalworkers", 0, "parallel fitness-evaluation goroutines per engine (0 = auto; results are identical for any value)")
		seed      = flag.Int64("seed", 1994, "random seed")
		outPath   = flag.String("out", "", "write the partition as 'node part' lines to this file")
		svgPath   = flag.String("svg", "", "render the partitioned graph as SVG to this file")
	)
	flag.Parse()

	g, err := loadGraph(*graphPath, *meshN)
	if err != nil {
		fatal(err)
	}
	obj := partition.TotalCut
	if *objective == "worst" {
		obj = partition.WorstCut
	} else if *objective != "total" {
		fatal(fmt.Errorf("unknown objective %q", *objective))
	}

	p, err := run(g, *algo, *parts, obj, *gens, *pop, *islands, *workers, *seed)
	if err != nil {
		fatal(err)
	}
	report(g, p, obj)

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		for v, q := range p.Assign {
			fmt.Fprintf(f, "%d %d\n", v, q)
		}
	}
	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := viz.WriteSVG(f, g, p, viz.Options{ShowCutEdges: true}); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *svgPath)
	}
}

func loadGraph(path string, meshN int) (*graph.Graph, error) {
	switch {
	case path != "" && meshN != 0:
		return nil, fmt.Errorf("use either -graph or -mesh, not both")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		// .metis / .graph files use the METIS/Chaco format; everything else
		// the native text format.
		if strings.HasSuffix(path, ".metis") || strings.HasSuffix(path, ".graph") {
			return graph.ReadMETIS(f)
		}
		return graph.Read(f)
	case meshN >= 3:
		return gen.Mesh(meshN, gen.SuiteSeed+int64(meshN)), nil
	default:
		return nil, fmt.Errorf("need -graph FILE or -mesh N (N >= 3)")
	}
}

func run(g *graph.Graph, algo string, parts int, obj partition.Objective,
	gens, pop, islands, workers int, seed int64) (*partition.Partition, error) {

	rng := rand.New(rand.NewSource(seed))
	switch algo {
	case "rsb":
		return spectral.Partition(g, parts, rng)
	case "ibp":
		return ibp.Partition(g, parts, ibp.ShuffledRowMajor)
	case "rcb":
		return rcb.Partition(g, parts, rcb.Coordinate)
	case "rgb":
		return rcb.Partition(g, parts, rcb.GraphBFS)
	case "kl":
		p, err := spectral.Partition(g, parts, rng)
		if err != nil {
			return nil, err
		}
		kl.Refine(g, p, 0)
		return p, nil
	case "anneal":
		return anneal.Partition(g, anneal.Config{Parts: parts, Objective: obj, Seed: seed})
	case "fm":
		p, err := greedy.RegionGrow(g, parts)
		if err != nil {
			return nil, err
		}
		fm.Refine(g, p, fm.Config{})
		return p, nil
	case "grow":
		return greedy.RegionGrow(g, parts)
	case "scattered":
		return greedy.Scattered(g.NumNodes(), parts)
	case "strip":
		return greedy.StripIndex(g, parts)
	case "multilevel":
		return multilevel.Partition(g, multilevel.Config{Parts: parts, Seed: seed},
			func(cg *graph.Graph, cp int, r *rand.Rand) (*partition.Partition, error) {
				return spectral.Partition(cg, cp, r)
			})
	case "dknux", "knux", "ux", "2pt":
		return runGA(g, algo, parts, obj, gens, pop, islands, workers, seed)
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
}

func runGA(g *graph.Graph, algo string, parts int, obj partition.Objective,
	gens, pop, islands, workers int, seed int64) (*partition.Partition, error) {

	// Seed the population with IBP when coordinates exist (the paper's
	// recommended practice), otherwise start random.
	var seeds []*partition.Partition
	if g.HasCoords() {
		if s, err := ibp.Partition(g, parts, ibp.ShuffledRowMajor); err == nil {
			seeds = append(seeds, s)
		}
	}
	estimate := func(i int) *partition.Partition {
		if len(seeds) > 0 {
			return seeds[i%len(seeds)]
		}
		return partition.RandomBalanced(g.NumNodes(), parts, rand.New(rand.NewSource(seed+int64(i))))
	}
	mkOp := func(i int) ga.Crossover {
		switch algo {
		case "dknux":
			return ga.NewDKNUX(estimate(i))
		case "knux":
			return ga.NewKNUX(estimate(i))
		case "ux":
			return ga.Uniform{}
		default: // "2pt"
			return ga.KPoint{K: 2}
		}
	}
	base := ga.Config{
		Parts:       parts,
		Objective:   obj,
		PopSize:     pop,
		Seeds:       seeds,
		EvalWorkers: workers,
		Seed:        seed,
	}
	if islands <= 1 {
		base.Crossover = mkOp(0)
		e, err := ga.New(g, base)
		if err != nil {
			return nil, err
		}
		return e.Run(gens).Part, nil
	}
	m, err := dpga.New(g, dpga.Config{
		Base:             base,
		Islands:          islands,
		Parallel:         true,
		CrossoverFactory: mkOp,
	})
	if err != nil {
		return nil, err
	}
	return m.Run(gens).Part, nil
}

func report(g *graph.Graph, p *partition.Partition, obj partition.Objective) {
	fmt.Printf("nodes: %d  edges: %d  parts: %d\n", g.NumNodes(), g.NumEdges(), p.Parts)
	fmt.Printf("cut size (sum_q C(q)/2): %.0f\n", p.CutSize(g))
	fmt.Printf("worst cut (max_q C(q)):  %.0f\n", p.MaxPartCut(g))
	fmt.Printf("imbalance^2:             %.2f\n", p.ImbalanceSq(g))
	fmt.Printf("part sizes:              %v\n", p.PartSizes())
	fmt.Printf("fitness (%s): %.2f\n", obj, p.Fitness(g, obj))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gapart:", err)
	os.Exit(1)
}
