// Command benchtrend aggregates a directory of benchmark JSON artifacts
// (the bench-*.json files CI uploads on every run, downloaded side by side)
// into per-(case, algorithm) time series of cut and ns_per_op, so quality
// and latency drift across commits is visible without opening every file.
//
// Usage:
//
//	benchtrend -dir artifacts                      # markdown to stdout
//	benchtrend -dir artifacts -format csv -o t.csv # long-form CSV for plotting
//	benchtrend -dir artifacts -glob 'bench-scale-*.json'
//
// Files are ordered lexically by name, so artifacts named with timestamps,
// run numbers, or commit sequence form the time axis directly.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		dir     = flag.String("dir", ".", "directory holding the benchmark JSON artifacts")
		glob    = flag.String("glob", "bench-*.json", "base-name glob selecting the artifact files")
		format  = flag.String("format", "markdown", "output format: markdown | csv")
		outPath = flag.String("o", "", "write the trend to this file instead of stdout")
	)
	flag.Parse()

	if *format != "markdown" && *format != "csv" {
		fatal(fmt.Errorf("unknown format %q (markdown | csv)", *format))
	}
	reports, err := bench.LoadReports(*dir, *glob)
	if err != nil {
		fatal(err)
	}
	if len(reports) == 0 {
		fatal(fmt.Errorf("no files matching %q in %s", *glob, *dir))
	}

	var w io.Writer = os.Stdout
	var out *os.File
	if *outPath != "" {
		out, err = os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		w = out
	}

	trend := bench.NewTrend(reports)
	if *format == "markdown" {
		err = trend.WriteMarkdown(w)
	} else {
		err = trend.WriteCSV(w)
	}
	if err != nil {
		fatal(err)
	}
	if out != nil {
		if err := out.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "benchtrend: %d reports, %d series\n", len(reports), len(trend.Rows))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtrend:", err)
	os.Exit(1)
}
