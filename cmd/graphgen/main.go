// Command graphgen emits benchmark graphs in the text format of package
// graph, so external tools (or future runs) can consume the exact meshes the
// experiments use.
//
// Usage:
//
//	graphgen -suite -dir graphs/                # the full paper suite
//	graphgen -mesh 167 > mesh167.g              # one mesh to stdout
//	graphgen -mesh 167 -format metis > m.metis  # METIS, for partd and external tools
//	graphgen -grid 8x8 > grid.g                 # structured grid
//	graphgen -incremental 118+21 -dir .         # base and grown mesh of one case
//	graphgen -rgg 1000000 -format metis > r.metis    # scale-tier random geometric graph
//	graphgen -powerlaw 1000000 -format edgelist > p.el
//
// -format selects the output encoding (text | metis | edgelist); -suite and
// -incremental name their files with the matching extension so partd,
// gapart -in, and external METIS tooling consume them directly.
//
// The -rgg and -powerlaw generators reach the scale1M tier (millions of
// nodes); all output paths stream line by line through a sized buffer, so
// emitting such graphs costs no memory beyond the graph itself.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/gen"
	"repro/internal/gio"
	"repro/internal/graph"
)

func main() {
	var (
		suite  = flag.Bool("suite", false, "emit the full paper mesh suite")
		mesh   = flag.Int("mesh", 0, "emit one benchmark mesh with N nodes to stdout")
		grid   = flag.String("grid", "", "emit an RxC grid, e.g. 8x8")
		incr   = flag.String("incremental", "", "emit an incremental case, e.g. 118+21")
		domain = flag.String("domain", "", "emit a non-convex domain mesh: lshape|annulus (use with -nodes)")
		nodes  = flag.Int("nodes", 150, "node count for -domain")
		rgg    = flag.Int("rgg", 0, "emit a random geometric graph with N nodes (scale1M-tier generator)")
		radius = flag.Float64("radius", 0, "connection radius for -rgg; 0 = sqrt(2.56/N), the scale-suite density")
		plaw   = flag.Int("powerlaw", 0, "emit a power-law (preferential attachment) graph with N nodes")
		seed   = flag.Int64("seed", gen.SuiteSeed, "seed for -rgg and -powerlaw")
		format = flag.String("format", "text", "output format: text | metis | edgelist")
		metis  = flag.Bool("metis", false, "deprecated alias for -format metis")
		dir    = flag.String("dir", ".", "output directory for -suite and -incremental")
	)
	flag.Parse()

	outFormat, err := gio.FormatByName(*format)
	if err != nil {
		fatal(err)
	}
	if *metis {
		outFormat = gio.FormatMETIS
	}
	if outFormat == gio.FormatAuto {
		outFormat = gio.FormatText
	}
	ext := map[gio.Format]string{
		gio.FormatText: ".g", gio.FormatMETIS: ".metis", gio.FormatEdgeList: ".el",
	}[outFormat]

	emit := func(g *graph.Graph) {
		if err := gio.WriteGraph(outFormat, os.Stdout, g); err != nil {
			fatal(err)
		}
	}
	writeGraph := func(path string, g *graph.Graph) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		return gio.WriteGraph(outFormat, f, g)
	}
	switch {
	case *suite:
		for _, n := range gen.PaperSizes {
			path := filepath.Join(*dir, fmt.Sprintf("mesh%03d%s", n, ext))
			if err := writeGraph(path, gen.PaperGraph(n)); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", path)
		}
	case *mesh >= 3:
		emit(gen.Mesh(*mesh, gen.SuiteSeed+int64(*mesh)))
	case *domain != "":
		var d gen.Domain
		switch *domain {
		case "lshape":
			d = gen.LShape{}
		case "annulus":
			d = gen.Annulus{}
		default:
			fatal(fmt.Errorf("unknown -domain %q (want lshape or annulus)", *domain))
		}
		emit(gen.DomainMesh(d, *nodes, gen.SuiteSeed))
	case *rgg > 0:
		r := *radius
		if r == 0 {
			// The scale suites' density: expected degree ~ pi*2.56 = 8, which
			// keeps the graph connected with high probability while staying
			// sparse enough that the emit is edge-count, not density, bound.
			r = math.Sqrt(2.56 / float64(*rgg))
		}
		emit(gen.RandomGeometric(rand.New(rand.NewSource(*seed)), *rgg, r))
	case *plaw > 0:
		emit(gen.PowerLaw(*plaw, 4, *seed))
	case *grid != "":
		var r, c int
		if _, err := fmt.Sscanf(*grid, "%dx%d", &r, &c); err != nil || r < 1 || c < 1 {
			fatal(fmt.Errorf("bad -grid %q, want RxC", *grid))
		}
		emit(gen.Grid(r, c))
	case *incr != "":
		var b, a int
		if _, err := fmt.Sscanf(strings.ReplaceAll(*incr, "+", " "), "%d %d", &b, &a); err != nil {
			fatal(fmt.Errorf("bad -incremental %q, want BASE+ADDED", *incr))
		}
		base, grown := gen.IncrementalPair(gen.IncrementalCase{Base: b, Added: a})
		basePath := filepath.Join(*dir, fmt.Sprintf("mesh%03d_base%s", b, ext))
		grownPath := filepath.Join(*dir, fmt.Sprintf("mesh%03d_plus%02d%s", b, a, ext))
		if err := writeGraph(basePath, base); err != nil {
			fatal(err)
		}
		if err := writeGraph(grownPath, grown); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", basePath, "and", grownPath)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
