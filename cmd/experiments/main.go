// Command experiments regenerates every table and figure of the paper's
// evaluation section (see README.md for the experiment index), and runs the
// machine-readable benchmark suites CI tracks.
//
// Usage:
//
//	experiments                  # everything at paper scale (slow)
//	experiments -quick           # everything at smoke-test scale
//	experiments -table 3         # one table
//	experiments -figure conv     # one figure: 1 | conv | speedup
//	experiments -o report.txt    # also write the output to a file
//
// Benchmark mode emits a JSON artifact (schema internal/bench.SchemaVersion)
// and can gate against a checked-in baseline:
//
//	experiments -bench -suite small -json out.json
//	experiments -bench -suite small -json out.json -baseline bench/baseline.json -tol 0.10
//	experiments -bench -suite scale -algos kl,multilevel-kl -json bench.json
//
// Instead of a generated suite, -in benchmarks a graph file (METIS,
// edge-list, or native text, via internal/gio):
//
//	experiments -bench -in web.metis -parts 8 -algos kl,multilevel-kl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/algo"
	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/gio"
	"repro/internal/paperdata"
	"repro/internal/partition"
)

var compare = flag.Bool("compare", false, "print a measured-vs-paper winner comparison after each table")

func main() {
	var (
		quick   = flag.Bool("quick", false, "reduced budget (fast smoke run)")
		table   = flag.Int("table", 0, "regenerate only this table (1-6)")
		figure  = flag.String("figure", "", "regenerate only this figure: 1 | conv | speedup | sweep | incr")
		outPath = flag.String("o", "", "also write the report to this file")
		runs    = flag.Int("runs", 0, "override run count")
		gens    = flag.Int("gens", 0, "override generations")
		workers = flag.Int("evalworkers", 0, "parallel fitness-evaluation goroutines per engine (0 = auto; results are identical for any value)")

		doBench   = flag.Bool("bench", false, "run the machine-readable benchmark suite instead of tables/figures")
		suite     = flag.String("suite", "small", "benchmark suite: small | scale | scale100k | scale1M | scale10M | diverse | weighted | fmpar (width-labeled parallel-FM report)")
		inPath    = flag.String("in", "", "benchmark a graph file instead of a generated suite (format from extension, or -informat)")
		inFormat  = flag.String("informat", "auto", "input graph format for -in: auto | metis | edgelist | text")
		parts     = flag.Int("parts", 8, "part count for -in")
		algos     = flag.String("algos", "", "comma-separated registry names to benchmark (default: the deterministic set)")
		casesCSV  = flag.String("cases", "", "comma-separated case names to keep from the suite (default: all; the scale1M CI smoke runs only the RGG case this way)")
		jsonPath  = flag.String("json", "", "write the benchmark report as JSON to this file")
		baseline  = flag.String("baseline", "", "compare cuts against this baseline report; exit 1 on regression")
		tol       = flag.Float64("tol", 0.10, "allowed relative cut increase vs the baseline")
		exact     = flag.Bool("exact", false, "require cuts identical to the baseline in both directions (the determinism gate)")
		repeat    = flag.Int("repeat", 1, "timing repetitions per (case, algorithm) pair")
		objective = flag.String("objective", "cut", "comma-separated objectives to benchmark: cut | maxcut | commvol (algorithms lacking one produce error rows)")
		mlWorkers = flag.Int("workers", 0, "parallel V-cycle goroutines: coarsening, contraction, projection, and colored refinement (0 = auto; results are identical for any value)")
		fmparThr  = flag.Int("fmpar-threshold", 0, "multilevel: node count at which a level's FM switches to the deterministic-parallel colored schedule (0 = default 50k; negative = always serial FM)")
		lanczos   = flag.Int("lanczos", 0, "rsb: Lanczos iteration budget per Fiedler solve (0 = default 40)")
		cpuProf   = flag.String("cpuprofile", "", "bench mode: write a CPU profile covering the measured runs to this file")
		memProf   = flag.String("memprofile", "", "bench mode: write a heap profile (after a forced GC) to this file when the suite finishes")
	)
	flag.Parse()

	if *doBench {
		runBench(benchRun{
			suite:    *suite,
			inPath:   *inPath,
			inFormat: *inFormat,
			parts:    *parts,
			algoCSV:  *algos,
			caseCSV:  *casesCSV,
			jsonPath: *jsonPath,
			baseline: *baseline,
			tol:      *tol,
			exact:    *exact,
			repeat:   *repeat,
			objCSV:   *objective,
			evalW:    *workers,
			workers:  *mlWorkers,
			fmparThr: *fmparThr,
			lanczos:  *lanczos,
			cpuProf:  *cpuProf,
			memProf:  *memProf,
		})
		return
	}

	opt := bench.Paper()
	if *quick {
		opt = bench.Quick()
	}
	if *runs > 0 {
		opt.Runs = *runs
	}
	if *gens > 0 {
		opt.Generations = *gens
	}
	if *workers > 0 {
		opt.EvalWorkers = *workers
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	fmt.Fprintf(out, "Experiment configuration: %+v\n\n", opt)
	start := time.Now()

	switch {
	case *table != 0:
		emitTable(out, *table, opt)
	case *figure != "":
		emitFigure(out, *figure, opt)
	default:
		for i := 1; i <= 6; i++ {
			emitTable(out, i, opt)
		}
		emitFigure(out, "1", opt)
		emitFigure(out, "conv", opt)
		emitFigure(out, "speedup", opt)
	}
	fmt.Fprintf(out, "total time: %s\n", time.Since(start).Round(time.Millisecond))
}

func emitTable(out io.Writer, id int, opt bench.Options) {
	fns := map[int]func(bench.Options) bench.Table{
		1: bench.Table1, 2: bench.Table2, 3: bench.Table3,
		4: bench.Table4, 5: bench.Table5, 6: bench.Table6,
	}
	fn, ok := fns[id]
	if !ok {
		fmt.Fprintln(os.Stderr, "experiments: no such table", id)
		os.Exit(1)
	}
	start := time.Now()
	t := fn(opt)
	fmt.Fprintln(out, t.Format())
	if *compare {
		fmt.Fprintln(out, paperdata.Compare(id, t).Format())
	}
	fmt.Fprintf(out, "[%s regenerated in %s]\n\n", t.ID, time.Since(start).Round(time.Millisecond))
}

// benchRun bundles the benchmark-mode flags.
type benchRun struct {
	suite    string
	inPath   string // when set, benchmark this file instead of a suite
	inFormat string
	parts    int
	algoCSV  string
	caseCSV  string // comma-separated case names to keep; "" = all
	jsonPath string
	baseline string
	tol      float64
	exact    bool
	repeat   int
	objCSV   string // comma-separated objectives; "" = cut only
	evalW    int    // GA fitness-evaluation width
	workers  int    // multilevel pipeline width
	fmparThr int    // multilevel parallel-FM threshold (0 = default)
	lanczos  int    // rsb Lanczos iteration budget
	cpuProf  string // write a CPU profile of the measured runs here
	memProf  string // write a post-GC heap profile here after the suite
}

// runBench executes a JSON benchmark suite, optionally writes the artifact,
// and optionally gates against a baseline report: with -exact, any cut
// difference in either direction fails (the Workers determinism gate);
// otherwise any (case, algo) cut — or a case's best cut — regressing beyond
// tol fails.
func runBench(cfg benchRun) {
	var cases []bench.Case
	suiteName := cfg.suite
	if cfg.inPath != "" {
		f, err := gio.FormatByName(cfg.inFormat)
		if err != nil {
			fail(err)
		}
		g, err := gio.ReadGraphFile(cfg.inPath, f)
		if err != nil {
			fail(err)
		}
		name := fmt.Sprintf("%s-p%d", filepath.Base(cfg.inPath), cfg.parts)
		suiteName = "file"
		cases = []bench.Case{{Name: name, Graph: g, Parts: cfg.parts}}
	} else {
		var err error
		cases, err = bench.SuiteByName(cfg.suite)
		if err != nil {
			fail(err)
		}
	}
	if cfg.caseCSV != "" {
		keep := map[string]bool{}
		for _, n := range strings.Split(cfg.caseCSV, ",") {
			if n = strings.TrimSpace(n); n != "" {
				keep[n] = true
			}
		}
		var kept []bench.Case
		for _, c := range cases {
			if keep[c.Name] {
				kept = append(kept, c)
				delete(keep, c.Name)
			}
		}
		if len(keep) > 0 {
			for n := range keep {
				fail(fmt.Errorf("-cases: %q is not in suite %q", n, suiteName))
			}
		}
		cases = kept
	}
	// The fmpar suite measures the parallel-FM pipeline width vs width; the
	// full deterministic set (flat refiners at 1M nodes, run twice) would
	// multiply its runtime for nothing the report gates on.
	fmparMode := cfg.suite == "fmpar" && cfg.inPath == ""
	names := bench.DefaultJSONAlgos()
	if fmparMode {
		names = []string{"multilevel-fm"}
	}
	if cfg.algoCSV != "" {
		names = nil
		for _, n := range strings.Split(cfg.algoCSV, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	for _, n := range names {
		if _, err := algo.Get(n); err != nil {
			fail(err)
		}
	}
	objectives := []partition.Objective{partition.TotalCut}
	if cfg.objCSV != "" {
		objectives = nil
		for _, s := range strings.Split(cfg.objCSV, ",") {
			o, err := partition.ParseObjective(strings.TrimSpace(s))
			if err != nil {
				fail(err)
			}
			objectives = append(objectives, o)
		}
	}
	opt := algo.Options{Seed: gen.SuiteSeed, EvalWorkers: cfg.evalW, Workers: cfg.workers, FMParThreshold: cfg.fmparThr, LanczosIter: cfg.lanczos}
	// Profiles cover only the measured algo.Run loops, not suite generation:
	// graph construction would otherwise dominate the CPU profile at the 1M+
	// tier and hide the V-cycle phases the profile exists to expose.
	if cfg.cpuProf != "" {
		f, err := os.Create(cfg.cpuProf)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
	}
	if cfg.memProf != "" {
		defer func() {
			f, err := os.Create(cfg.memProf)
			if err != nil {
				fail(err)
			}
			runtime.GC() // settle live-heap numbers before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
	}
	start := time.Now()
	// One report covers every requested objective: RunJSON tags each result
	// row, and the comparison gates key on (case, algo, objective).
	var rep *bench.Report
	for _, o := range objectives {
		oOpt := opt
		oOpt.Objective = o
		var r *bench.Report
		if fmparMode {
			// Width-labeled rows ("algo@w1" vs "algo@w4"): each width is its
			// own series under the (case, algo, objective) comparison keys,
			// so one artifact archives both the quality identity and the
			// per-width timing/phase breakdown.
			r = bench.RunJSONWidths(suiteName, cases, names, oOpt, cfg.repeat, []int{1, 4})
		} else {
			r = bench.RunJSON(suiteName, cases, names, oOpt, cfg.repeat)
		}
		if rep == nil {
			rep = r
		} else {
			rep.Results = append(rep.Results, r.Results...)
		}
	}
	if fmparMode {
		// In-run determinism gate: every width of one (case, algo, objective)
		// must report identical quality — the Workers bit-identity contract,
		// checked before the artifact is written or compared.
		checkWidthIdentity(rep)
	}
	for _, r := range rep.Results {
		obj := r.Objective
		if obj == "" {
			obj = "cut"
		}
		if r.Error != "" {
			fmt.Printf("%-16s %-15s %-8s skipped: %s\n", r.Case, r.Algo, obj, r.Error)
			continue
		}
		fmt.Printf("%-16s %-15s %-8s %s %8.0f  balance %.3f  %12s\n",
			r.Case, r.Algo, obj, r.MetricName(), r.Metric(), r.Balance, time.Duration(r.NsPerOp))
	}
	fmt.Printf("benchmark suite %q: %d results in %s\n",
		suiteName, len(rep.Results), time.Since(start).Round(time.Millisecond))

	if cfg.jsonPath != "" {
		f, err := os.Create(cfg.jsonPath)
		if err != nil {
			fail(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Println("wrote", cfg.jsonPath)
	}

	if cfg.baseline != "" {
		f, err := os.Open(cfg.baseline)
		if err != nil {
			fail(err)
		}
		base, err := bench.ReadJSON(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		if cfg.exact {
			if diffs := bench.CompareExact(base, rep); len(diffs) > 0 {
				fmt.Fprintf(os.Stderr, "experiments: %d cut difference(s) vs %s:\n", len(diffs), cfg.baseline)
				for _, d := range diffs {
					fmt.Fprintln(os.Stderr, "  ", d)
				}
				os.Exit(1)
			}
			fmt.Printf("cuts identical to %s\n", cfg.baseline)
			return
		}
		regs := bench.Compare(base, rep, cfg.tol)
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "experiments: %d cut regression(s) beyond %.0f%% vs %s:\n",
				len(regs), 100*cfg.tol, cfg.baseline)
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "  ", r)
			}
			os.Exit(1)
		}
		fmt.Printf("no cut regressions beyond %.0f%% vs %s\n", 100*cfg.tol, cfg.baseline)
	}
}

// checkWidthIdentity fails the run if two "@wN"-labeled rows of the same
// (case, algo, objective) disagree on the optimized metric: worker width
// leaked into a result, which no tolerance excuses.
func checkWidthIdentity(rep *bench.Report) {
	first := map[string]bench.Result{}
	for _, r := range rep.Results {
		if r.Error != "" {
			continue
		}
		base := r.Algo
		if i := strings.LastIndex(base, "@w"); i >= 0 {
			base = base[:i]
		}
		k := r.Case + "\x00" + base + "\x00" + r.Objective
		prev, seen := first[k]
		if !seen {
			first[k] = r
			continue
		}
		if r.Metric() != prev.Metric() {
			fail(fmt.Errorf("width determinism violated on %s/%s: %s %v (%s) != %v (%s)",
				r.Case, base, r.MetricName(), r.Metric(), r.Algo, prev.Metric(), prev.Algo))
		}
	}
	fmt.Println("cross-width quality identical for every (case, algo, objective)")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

func emitFigure(out io.Writer, id string, opt bench.Options) {
	start := time.Now()
	switch id {
	case "1":
		fmt.Fprintln(out, bench.Figure1())
	case "conv":
		fmt.Fprintln(out, bench.Convergence(opt).Format())
	case "speedup":
		fmt.Fprintln(out, bench.Speedup(opt).Format())
	case "sweep":
		fmt.Fprintln(out, bench.ParamSweep(opt).Format())
	case "incr":
		fmt.Fprintln(out, bench.IncrementalConvergence(opt).Format())
	default:
		fmt.Fprintln(os.Stderr, "experiments: no such figure", id)
		os.Exit(1)
	}
	fmt.Fprintf(out, "[figure %s regenerated in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
}
