// Command experiments regenerates every table and figure of the paper's
// evaluation section (see README.md for the experiment index).
//
// Usage:
//
//	experiments                  # everything at paper scale (slow)
//	experiments -quick           # everything at smoke-test scale
//	experiments -table 3         # one table
//	experiments -figure conv     # one figure: 1 | conv | speedup
//	experiments -o report.txt    # also write the output to a file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/paperdata"
)

var compare = flag.Bool("compare", false, "print a measured-vs-paper winner comparison after each table")

func main() {
	var (
		quick   = flag.Bool("quick", false, "reduced budget (fast smoke run)")
		table   = flag.Int("table", 0, "regenerate only this table (1-6)")
		figure  = flag.String("figure", "", "regenerate only this figure: 1 | conv | speedup | sweep | incr")
		outPath = flag.String("o", "", "also write the report to this file")
		runs    = flag.Int("runs", 0, "override run count")
		gens    = flag.Int("gens", 0, "override generations")
		workers = flag.Int("evalworkers", 0, "parallel fitness-evaluation goroutines per engine (0 = auto; results are identical for any value)")
	)
	flag.Parse()

	opt := bench.Paper()
	if *quick {
		opt = bench.Quick()
	}
	if *runs > 0 {
		opt.Runs = *runs
	}
	if *gens > 0 {
		opt.Generations = *gens
	}
	if *workers > 0 {
		opt.EvalWorkers = *workers
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	fmt.Fprintf(out, "Experiment configuration: %+v\n\n", opt)
	start := time.Now()

	switch {
	case *table != 0:
		emitTable(out, *table, opt)
	case *figure != "":
		emitFigure(out, *figure, opt)
	default:
		for i := 1; i <= 6; i++ {
			emitTable(out, i, opt)
		}
		emitFigure(out, "1", opt)
		emitFigure(out, "conv", opt)
		emitFigure(out, "speedup", opt)
	}
	fmt.Fprintf(out, "total time: %s\n", time.Since(start).Round(time.Millisecond))
}

func emitTable(out io.Writer, id int, opt bench.Options) {
	fns := map[int]func(bench.Options) bench.Table{
		1: bench.Table1, 2: bench.Table2, 3: bench.Table3,
		4: bench.Table4, 5: bench.Table5, 6: bench.Table6,
	}
	fn, ok := fns[id]
	if !ok {
		fmt.Fprintln(os.Stderr, "experiments: no such table", id)
		os.Exit(1)
	}
	start := time.Now()
	t := fn(opt)
	fmt.Fprintln(out, t.Format())
	if *compare {
		fmt.Fprintln(out, paperdata.Compare(id, t).Format())
	}
	fmt.Fprintf(out, "[%s regenerated in %s]\n\n", t.ID, time.Since(start).Round(time.Millisecond))
}

func emitFigure(out io.Writer, id string, opt bench.Options) {
	start := time.Now()
	switch id {
	case "1":
		fmt.Fprintln(out, bench.Figure1())
	case "conv":
		fmt.Fprintln(out, bench.Convergence(opt).Format())
	case "speedup":
		fmt.Fprintln(out, bench.Speedup(opt).Format())
	case "sweep":
		fmt.Fprintln(out, bench.ParamSweep(opt).Format())
	case "incr":
		fmt.Fprintln(out, bench.IncrementalConvergence(opt).Format())
	default:
		fmt.Fprintln(os.Stderr, "experiments: no such figure", id)
		os.Exit(1)
	}
	fmt.Fprintf(out, "[figure %s regenerated in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
}
