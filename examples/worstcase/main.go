// Worstcase: directly optimizing the worst-case communication cost
// max_q C(q) — the paper's §4.3. This objective is not differentiable, so
// gradient-style heuristics cannot target it; the GA optimizes it directly
// with Fitness 2. The example shows that a partition with a modest TOTAL cut
// can hide a badly overloaded single processor, and that the GA flattens the
// per-part profile.
//
// Run with: go run ./examples/worstcase
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/dpga"
	"repro/internal/ga"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/spectral"
)

func main() {
	g := gen.PaperGraph(213)
	const parts = 8

	rsb, err := spectral.Partition(g, parts, rand.New(rand.NewSource(5)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("RSB (optimizes neither objective directly):")
	profile(g, rsb)

	run := func(obj partition.Objective, label string) *partition.Partition {
		m, err := dpga.New(g, dpga.Config{
			Base: ga.Config{
				Parts:     parts,
				Objective: obj,
				PopSize:   320,
				Seeds:     []*partition.Partition{rsb},
				Seed:      11,
			},
			Islands:          16,
			Parallel:         true,
			CrossoverFactory: func(int) ga.Crossover { return ga.NewDKNUX(rsb) },
		})
		if err != nil {
			log.Fatal(err)
		}
		p := m.Run(150).Part
		fmt.Println(label + ":")
		profile(g, p)
		return p
	}

	total := run(partition.TotalCut, "DKNUX under Fitness 1 (total cut)")
	worst := run(partition.WorstCut, "DKNUX under Fitness 2 (worst cut)")

	fmt.Printf("summary: total-cut objective -> max_q C(q) = %.0f;"+
		" worst-cut objective -> max_q C(q) = %.0f\n",
		total.ObjectiveValue(g, partition.WorstCut),
		worst.ObjectiveValue(g, partition.WorstCut))
	fmt.Println("Fitness 2 trades a little total volume for a flatter profile —")
	fmt.Println("exactly what a bulk-synchronous solver's critical path wants.")
}

func profile(g *graph.Graph, p *partition.Partition) {
	fmt.Printf("  per-part C(q): %.0f\n", p.PartCuts(g))
	fmt.Printf("  total cut=%.0f  worst part=%.0f  commvol=%.0f  sizes=%v\n\n",
		p.ObjectiveValue(g, partition.TotalCut),
		p.ObjectiveValue(g, partition.WorstCut),
		p.ObjectiveValue(g, partition.CommVolume),
		p.PartSizes())
}
