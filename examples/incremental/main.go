// Incremental: adaptive mesh refinement with incremental repartitioning —
// the paper's §4.2 workload as a running application loop.
//
// A mesh is partitioned once; then, in each adaptation step, nodes are added
// in a random local region (as a solver would refine around a shock or
// crack). Three strategies keep the decomposition balanced:
//
//   - DKNUX GA seeded with the previous partition (the paper's method),
//   - RSB from scratch on every step (good cuts, but relabels everything,
//     forcing massive data migration), and
//   - the deterministic majority-neighbor rule (no migration, but quality
//     and balance decay).
//
// Run with: go run ./examples/incremental
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/incremental"
	"repro/internal/spectral"
)

func main() {
	const parts = 4
	g := gen.Mesh(183, gen.SuiteSeed+183)
	rng := rand.New(rand.NewSource(99))

	cur, err := spectral.Partition(g, parts, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial: %d nodes, cut=%.0f, sizes=%v\n\n",
		g.NumNodes(), cur.CutSize(g), cur.PartSizes())

	// Track the deterministic strategy separately to show its decay.
	det := cur.Clone()
	detGraph := g

	for step := 1; step <= 3; step++ {
		grown := gen.Refine(g, 30, rng)
		fmt.Printf("adaptation step %d: +30 nodes -> %d nodes\n", step, grown.NumNodes())

		// Paper's method: GA repair seeded with the old partition.
		gaPart, err := incremental.Repartition(grown, cur, incremental.Config{
			Generations: 120,
			TotalPop:    320,
			Islands:     16,
			Seed:        int64(step),
		})
		if err != nil {
			log.Fatal(err)
		}
		// Baseline 1: RSB from scratch.
		scratch, err := incremental.RSBFromScratch(grown, parts, int64(step))
		if err != nil {
			log.Fatal(err)
		}
		// Baseline 2: deterministic extension of ITS OWN previous state.
		detGrown := gen.Refine(detGraph, 30, rand.New(rand.NewSource(rngSeedFor(step))))
		det = incremental.MajorityNeighbor(detGrown, det)
		detGraph = detGrown

		fmt.Printf("  DKNUX incremental: cut=%3.0f  moved=%3d of %d old nodes  sizes=%v\n",
			gaPart.CutSize(grown), incremental.MovedNodes(cur, gaPart), g.NumNodes(), gaPart.PartSizes())
		fmt.Printf("  RSB from scratch:  cut=%3.0f  moved=%3d of %d old nodes  sizes=%v\n",
			scratch.CutSize(grown), incremental.MovedNodes(cur, scratch), g.NumNodes(), scratch.PartSizes())
		fmt.Printf("  majority-neighbor: cut=%3.0f  moved=  0 of %d old nodes  sizes=%v\n\n",
			det.CutSize(detGrown), detGraph.NumNodes()-30, det.PartSizes())

		g, cur = grown, gaPart
	}

	fmt.Println("The GA keeps cuts near RSB quality while moving a fraction of the data")
	fmt.Println("RSB-from-scratch would migrate; the deterministic rule moves nothing but")
	fmt.Println("lets balance and cut quality decay.")
}

// rngSeedFor keeps the deterministic strategy's refinement stream aligned
// with the main loop without sharing the rng.
func rngSeedFor(step int) int64 { return int64(1000 + step) }
