// Weighted: partitioning with non-unit node and edge weights — the paper's
// experiments assume unit weights but note that "weighted edges and nodes
// can also be handled easily"; this example exercises that path end to end.
//
// The scenario is a multi-physics mesh: nodes in a "refined" region carry
// 3x the computation weight (smaller elements, more work), and edges near
// the region carry heavier coupling. A good partition must balance WEIGHT
// (not node count) and avoid cutting the heavy edges. The example compares
// RSB (which sees edge weights through the Laplacian but balances node
// counts) with the DKNUX GA (which optimizes the weighted fitness
// directly), reporting both with the metrics package.
//
// Run with: go run ./examples/weighted
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/dpga"
	"repro/internal/ga"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/spectral"
)

func main() {
	g := buildWeightedMesh(213)
	const parts = 4
	fmt.Printf("weighted mesh: %d nodes (total weight %.0f), %d edges\n\n",
		g.NumNodes(), g.TotalNodeWeight(), g.NumEdges())

	rsb, err := spectral.Partition(g, parts, rand.New(rand.NewSource(3)))
	if err != nil {
		log.Fatal(err)
	}
	show("RSB (count-balanced)", g, rsb)

	m, err := dpga.New(g, dpga.Config{
		Base: ga.Config{
			Parts:   parts,
			PopSize: 320,
			Seeds:   []*partition.Partition{rsb},
			Seed:    9,
		},
		Islands:          16,
		Parallel:         true,
		CrossoverFactory: func(int) ga.Crossover { return ga.NewDKNUX(rsb) },
	})
	if err != nil {
		log.Fatal(err)
	}
	gaPart := m.Run(200).Part
	show("DKNUX (weight-aware fitness)", g, gaPart)

	ra, _ := metrics.Analyze(g, rsb)
	rb, _ := metrics.Analyze(g, gaPart)
	fmt.Println("verdict:", metrics.Compare("RSB", ra, "DKNUX", rb))
}

// buildWeightedMesh triples node weights inside a refined disc and scales
// edge weights by the mean endpoint weight (finer coupling).
func buildWeightedMesh(n int) *graph.Graph {
	base := gen.PaperGraph(n)
	b := graph.NewBuilder(n)
	weight := func(v int) float64 {
		c := base.Coord(v)
		dx, dy := c.X-0.3, c.Y-0.3
		if dx*dx+dy*dy < 0.04 { // refined region around (0.3, 0.3)
			return 3
		}
		return 1
	}
	for v := 0; v < n; v++ {
		b.SetCoord(v, base.Coord(v))
		b.SetNodeWeight(v, weight(v))
	}
	base.Edges(func(u, v int, w float64) bool {
		b.AddEdge(u, v, (weight(u)+weight(v))/2)
		return true
	})
	return b.Build()
}

func show(name string, g *graph.Graph, p *partition.Partition) {
	r, err := metrics.Analyze(g, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s:\n  weighted loads: %.0f (ratio %.3f)\n  weighted cut: %.1f  worst halo: %.1f\n\n",
		name, r.ComputeLoad, r.LoadRatio, r.Cut, r.WorstHalo)
}
