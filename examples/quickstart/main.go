// Quickstart: generate an unstructured mesh, partition it into 8 parts with
// the paper's DKNUX genetic algorithm, and compare against recursive
// spectral bisection.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/dpga"
	"repro/internal/ga"
	"repro/internal/gen"
	"repro/internal/ibp"
	"repro/internal/partition"
	"repro/internal/spectral"
)

func main() {
	// A 167-node unstructured mesh from the deterministic benchmark suite.
	g := gen.PaperGraph(167)
	const parts = 8
	fmt.Printf("mesh: %d nodes, %d edges -> %d parts\n", g.NumNodes(), g.NumEdges(), parts)

	// Baseline 1: recursive spectral bisection.
	rsb, err := spectral.Partition(g, parts, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RSB    cut=%3.0f  worst=%3.0f  sizes=%v\n",
		rsb.CutSize(g), rsb.MaxPartCut(g), rsb.PartSizes())

	// Baseline 2 and GA seed: index-based partitioning (shuffled row-major).
	seed, err := ibp.Partition(g, parts, ibp.ShuffledRowMajor)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IBP    cut=%3.0f  worst=%3.0f  sizes=%v\n",
		seed.CutSize(g), seed.MaxPartCut(g), seed.PartSizes())

	// The paper's GA: 320 individuals over 16 hypercube-connected islands,
	// DKNUX crossover, population seeded with the IBP solution.
	m, err := dpga.New(g, dpga.Config{
		Base: ga.Config{
			Parts:   parts,
			PopSize: 320,
			Seeds:   []*partition.Partition{seed},
			Seed:    42,
		},
		Islands:  16,
		Parallel: true,
		CrossoverFactory: func(island int) ga.Crossover {
			return ga.NewDKNUX(seed)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	best := m.Run(200)
	p := best.Part
	fmt.Printf("DKNUX  cut=%3.0f  worst=%3.0f  sizes=%v\n",
		p.CutSize(g), p.MaxPartCut(g), p.PartSizes())
	fmt.Printf("\nDKNUX improved the seed's cut by %.0f edges over 200 generations.\n",
		seed.CutSize(g)-p.CutSize(g))
}
