// Meshdecomp: domain decomposition for a parallel FEM-style solver — the
// application the paper's introduction motivates. The mesh is partitioned
// across "processors"; each iteration of a simulated Jacobi solver then
// requires every processor to exchange halo values along cut edges, so the
// partition quality directly sets the communication volume.
//
// The example compares the per-processor communication volumes (halo sizes)
// induced by RSB and by the DKNUX GA under the worst-cut objective — the
// non-differentiable cost that only the GA can optimize directly — and runs
// a few solver iterations to show the decomposition in action.
//
// Run with: go run ./examples/meshdecomp
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/dpga"
	"repro/internal/ga"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/spectral"
)

func main() {
	g := gen.PaperGraph(279)
	const parts = 8
	fmt.Printf("mesh: %d nodes, %d edges decomposed onto %d processors\n\n",
		g.NumNodes(), g.NumEdges(), parts)

	rsb, err := spectral.Partition(g, parts, rand.New(rand.NewSource(3)))
	if err != nil {
		log.Fatal(err)
	}
	report("RSB", g, rsb)

	m, err := dpga.New(g, dpga.Config{
		Base: ga.Config{
			Parts:     parts,
			Objective: partition.WorstCut, // minimize the bottleneck processor
			PopSize:   320,
			Seeds:     []*partition.Partition{rsb},
			Seed:      7,
		},
		Islands:          16,
		Parallel:         true,
		CrossoverFactory: func(int) ga.Crossover { return ga.NewDKNUX(rsb) },
	})
	if err != nil {
		log.Fatal(err)
	}
	gaPart := m.Run(150).Part
	report("DKNUX (worst-cut objective)", g, gaPart)

	// Full decomposition-quality reports and a head-to-head verdict.
	rRSB, err := metrics.Analyze(g, rsb)
	if err != nil {
		log.Fatal(err)
	}
	rGA, err := metrics.Analyze(g, gaPart)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("decomposition metrics (GA):")
	fmt.Println(rGA.Format())
	fmt.Println("verdict:", metrics.Compare("RSB", rRSB, "DKNUX", rGA))
	fmt.Println()

	fmt.Println("simulated Jacobi relaxation (5 sweeps) under the GA decomposition:")
	solve(g, gaPart, 5)
}

// report prints the halo (communication) profile of a decomposition.
func report(name string, g *graph.Graph, p *partition.Partition) {
	cuts := p.PartCuts(g)
	var worst, total float64
	for _, c := range cuts {
		total += c
		if c > worst {
			worst = c
		}
	}
	fmt.Printf("%s:\n  per-processor halo edges: %.0f\n  worst processor: %.0f, total: %.0f, sizes: %v\n\n",
		name, cuts, worst, total/2, p.PartSizes())
}

// solve runs a toy Jacobi relaxation u <- mean(neighbors), tracking how many
// values cross processor boundaries per sweep (the halo exchange volume).
func solve(g *graph.Graph, p *partition.Partition, sweeps int) {
	n := g.NumNodes()
	u := make([]float64, n)
	for v := range u {
		c := g.Coord(v)
		u[v] = math.Sin(3*c.X) * math.Cos(3*c.Y) // arbitrary initial field
	}
	for s := 0; s < sweeps; s++ {
		next := make([]float64, n)
		exchanged := 0
		var residual float64
		for v := 0; v < n; v++ {
			nbrs := g.Neighbors(v)
			if len(nbrs) == 0 {
				next[v] = u[v]
				continue
			}
			var sum float64
			for _, w := range nbrs {
				sum += u[w]
				if p.Assign[w] != p.Assign[v] {
					exchanged++ // this value crossed a processor boundary
				}
			}
			next[v] = sum / float64(len(nbrs))
			residual += math.Abs(next[v] - u[v])
		}
		u = next
		fmt.Printf("  sweep %d: halo values exchanged=%d, residual=%.4f\n", s+1, exchanged, residual)
	}
}
