// Parallel: the distributed-population GA (DPGA) as a parallel program —
// the paper's §3.4 and its CM-5/Paragon outlook. Each subpopulation runs in
// its own goroutine; every few generations the islands exchange their best
// individuals along a 4-dimensional hypercube, just as the paper's
// message-passing implementation would.
//
// The example runs the same total budget with 1, 4, and 16 islands and
// reports wall-clock time and solution quality, then demonstrates that the
// concurrent execution is bit-identical to the sequential one (island RNGs
// are independent and migration happens at barriers).
//
// Orthogonally to the island layer, every engine evaluates offspring
// fitness on a worker pool (ga.Config.EvalWorkers): breeding stays on one
// goroutine for reproducibility, evaluation fans out. The final section
// shows that a single population with parallel evaluation matches the
// serial engine assignment for assignment.
//
// Run with: go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/dpga"
	"repro/internal/ga"
	"repro/internal/gen"
	"repro/internal/ibp"
	"repro/internal/partition"
)

func main() {
	g := gen.PaperGraph(279)
	const parts = 8
	const generations = 150
	seed, err := ibp.Partition(g, parts, ibp.ShuffledRowMajor)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh: %d nodes, %d edges; GOMAXPROCS=%d\n\n",
		g.NumNodes(), g.NumEdges(), runtime.GOMAXPROCS(0))

	for _, islands := range []int{1, 4, 16} {
		start := time.Now()
		var cut float64
		if islands == 1 {
			e, err := ga.New(g, ga.Config{
				Parts:     parts,
				PopSize:   320,
				Seeds:     []*partition.Partition{seed},
				Crossover: ga.NewDKNUX(seed),
				Seed:      13,
			})
			if err != nil {
				log.Fatal(err)
			}
			cut = e.Run(generations).Part.CutSize(g)
		} else {
			m, err := dpga.New(g, dpga.Config{
				Base: ga.Config{
					Parts:   parts,
					PopSize: 320,
					Seeds:   []*partition.Partition{seed},
					Seed:    13,
				},
				Islands:  islands,
				Parallel: true,
				CrossoverFactory: func(int) ga.Crossover {
					return ga.NewDKNUX(seed)
				},
			})
			if err != nil {
				log.Fatal(err)
			}
			cut = m.Run(generations).Part.CutSize(g)
		}
		fmt.Printf("islands=%2d  population=320  gens=%d  ->  cut=%.0f  wall=%s\n",
			islands, generations, cut, time.Since(start).Round(time.Millisecond))
	}

	// Determinism: concurrent == sequential, assignment for assignment.
	fmt.Println("\nverifying parallel == sequential determinism (4 islands, 40 gens):")
	runOnce := func(parallel bool) []uint16 {
		m, err := dpga.New(g, dpga.Config{
			Base: ga.Config{
				Parts:   parts,
				PopSize: 64,
				Seeds:   []*partition.Partition{seed},
				Seed:    13,
			},
			Islands:  4,
			Parallel: parallel,
			CrossoverFactory: func(int) ga.Crossover {
				return ga.NewDKNUX(seed)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		return m.Run(40).Part.Assign
	}
	a, b := runOnce(true), runOnce(false)
	for i := range a {
		if a[i] != b[i] {
			log.Fatalf("divergence at node %d", i)
		}
	}
	fmt.Println("identical partitions — the island model is deterministic under concurrency.")

	// Second parallel axis: batched fitness evaluation inside one engine.
	// Breeding (selection/crossover/mutation) is serial on the engine's RNG;
	// evaluation and hill climbing are pure and fan out over EvalWorkers.
	fmt.Println("\nverifying parallel fitness evaluation == serial (1 population, 40 gens):")
	evalRun := func(workers int) ([]uint16, time.Duration) {
		start := time.Now()
		e, err := ga.New(g, ga.Config{
			Parts:       parts,
			PopSize:     320,
			Seeds:       []*partition.Partition{seed},
			Crossover:   ga.NewDKNUX(seed),
			HillClimb:   true,
			EvalWorkers: workers,
			Seed:        13,
		})
		if err != nil {
			log.Fatal(err)
		}
		p := e.Run(40).Part.Assign
		e.Close()
		return p, time.Since(start)
	}
	serial, tSerial := evalRun(1)
	para, tPara := evalRun(runtime.GOMAXPROCS(0))
	for i := range serial {
		if serial[i] != para[i] {
			log.Fatalf("eval-worker divergence at node %d", i)
		}
	}
	fmt.Printf("identical partitions — EvalWorkers=1 took %s, EvalWorkers=%d took %s.\n",
		tSerial.Round(time.Millisecond), runtime.GOMAXPROCS(0), tPara.Round(time.Millisecond))
}
