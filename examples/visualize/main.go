// Visualize: render partitions as SVG for visual inspection — scattered
// decomposition, IBP, RSB, and the DKNUX GA side by side on the same mesh,
// with cut edges emphasized. Open the written files in any browser.
//
// Run with: go run ./examples/visualize [-dir OUT]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/dpga"
	"repro/internal/ga"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/greedy"
	"repro/internal/ibp"
	"repro/internal/partition"
	"repro/internal/spectral"
	"repro/internal/viz"
)

func main() {
	dir := flag.String("dir", ".", "output directory for the SVG files")
	flag.Parse()

	g := gen.PaperGraph(279)
	const parts = 8

	scattered, err := greedy.Scattered(g.NumNodes(), parts)
	if err != nil {
		log.Fatal(err)
	}
	ibpPart, err := ibp.Partition(g, parts, ibp.ShuffledRowMajor)
	if err != nil {
		log.Fatal(err)
	}
	rsb, err := spectral.Partition(g, parts, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	m, err := dpga.New(g, dpga.Config{
		Base: ga.Config{
			Parts:   parts,
			PopSize: 320,
			Seeds:   []*partition.Partition{ibpPart},
			Seed:    17,
		},
		Islands:          16,
		Parallel:         true,
		CrossoverFactory: func(int) ga.Crossover { return ga.NewDKNUX(ibpPart) },
	})
	if err != nil {
		log.Fatal(err)
	}
	dknux := m.Run(200).Part

	for _, item := range []struct {
		name string
		p    *partition.Partition
	}{
		{"scattered", scattered},
		{"ibp", ibpPart},
		{"rsb", rsb},
		{"dknux", dknux},
	} {
		path := filepath.Join(*dir, fmt.Sprintf("partition_%s.svg", item.name))
		if err := writeSVG(path, g, item.p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s cut=%4.0f worst=%3.0f -> %s\n",
			item.name, item.p.CutSize(g), item.p.MaxPartCut(g), path)
	}
	fmt.Println("\nopen the SVGs in a browser; cut edges are drawn in red.")
}

func writeSVG(path string, g *graph.Graph, p *partition.Partition) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return viz.WriteSVG(f, g, p, viz.Options{ShowCutEdges: true})
}
