// Package repro reproduces "Genetic Algorithms for Graph Partitioning and
// Incremental Graph Partitioning" (Maini, Mehrotra, Mohan & Ranka, Proc.
// IEEE Supercomputing 1994) as a production-quality Go library.
//
// The public surface lives in the internal packages (this repository is a
// self-contained reproduction, not an importable SDK):
//
//   - internal/graph       CSR graphs, builders, traversal, text + METIS I/O
//   - internal/geometry    Delaunay triangulation for mesh generation
//   - internal/gen         the deterministic benchmark mesh suite and
//     non-convex FEM domains (L-shape, annulus)
//   - internal/partition   partitions, cut metrics, Fitness 1 and 2
//   - internal/ga          the GA: KNUX, DKNUX, classic operators, label
//     normalization, generational/steady-state engine
//   - internal/dpga        distributed-population islands (hypercube etc.),
//     synchronous-deterministic and asynchronous models
//   - internal/spectral    recursive spectral bisection (RSB baseline)
//   - internal/linalg      Jacobi, Lanczos, tridiagonal QL eigensolvers
//   - internal/ibp         index-based partitioning (appendix algorithm)
//   - internal/kl          Kernighan–Lin and boundary hill climbing
//   - internal/fm          Fiduccia–Mattheyses k-way refinement
//   - internal/anneal      simulated-annealing partitioner
//   - internal/rcb         coordinate / graph recursive bisection baselines
//   - internal/greedy      region-grow / scattered / strip baselines
//   - internal/incremental incremental repartitioning strategies
//   - internal/multilevel  heavy-edge-matching contraction (paper §5 outlook)
//   - internal/metrics     halo volumes, load ratios, migration cost
//   - internal/viz         SVG rendering of partitioned meshes
//   - internal/bench       regenerates every table and figure of the paper
//   - internal/paperdata   the paper's published numbers, for comparisons
//
// See README.md for a tour, quickstart, and bench instructions, and
// CHANGES.md for the per-PR history. cmd/experiments -compare prints
// paper-vs-measured results.
// The benchmarks in bench_test.go regenerate each table/figure via
// "go test -bench=."; cmd/experiments does the same at paper scale.
package repro
